// Unit tests for the two lint engines, run against the fixture files in
// tests/lint_fixtures/. Each fixture documents its expected findings inline;
// the assertions here are the goldens.
//
//   * cyclops-lint (tools/lint_core.hpp): the legacy line scanner, kept as
//     the dependency-free first gate;
//   * cyclops-analyze (tools/analyze/): the token engine — same 8 rules plus
//     the include-layering, include-cycle, and frozen-view passes, SARIF
//     output, and baselines.
//
// The parity tests hold both engines to identical findings on every shared
// fixture (restricted to the 8 rules both implement), including the former
// line-scanner gaps: multi-line declarations and >60-line lock scopes.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyzer.hpp"
#include "lint_core.hpp"

namespace {

using cyclops::lint::Finding;
using cyclops::lint::classify_path;
using cyclops::lint::lint_file;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lints one fixture and returns sorted (line, rule) pairs — the shape the
/// golden assertions compare against.
std::vector<std::pair<int, std::string>> lint_fixture(const std::string& name) {
  const std::string path = std::string(CYCLOPS_LINT_FIXTURE_DIR) + "/" + name;
  std::vector<std::pair<int, std::string>> got;
  for (const Finding& f : lint_file(path, slurp(path))) {
    got.emplace_back(f.line, f.rule);
  }
  std::sort(got.begin(), got.end());
  return got;
}

using Golden = std::vector<std::pair<int, std::string>>;

TEST(Lint, DeterminismFixture) {
  const Golden expected = {{9, "determinism"},
                           {10, "determinism"},
                           {11, "determinism"},
                           {12, "determinism"}};
  EXPECT_EQ(lint_fixture("bad_determinism.cpp"), expected);
}

TEST(Lint, UnorderedWireFixture) {
  const Golden expected = {{19, "unordered-wire"}, {23, "unordered-wire"}};
  EXPECT_EQ(lint_fixture("bad_unordered_wire.cpp"), expected);
}

TEST(Lint, RawThreadFixture) {
  const Golden expected = {{11, "raw-thread"},
                           {12, "raw-thread"},
                           {13, "raw-thread"}};
  EXPECT_EQ(lint_fixture("bad_raw_thread.cpp"), expected);
}

TEST(Lint, NarrowingFixtureHonoursSuppression) {
  // Line 15 carries `// cyclops-lint: allow(wire-narrowing)` and must not
  // appear; lines 17/18 split the cast and the wire call across lines.
  const Golden expected = {{13, "wire-narrowing"}, {14, "wire-narrowing"}};
  EXPECT_EQ(lint_fixture("bad_narrowing.cpp"), expected);
}

TEST(Lint, LockAcrossWireFixture) {
  // Lines 29/35: a send under an RAII guard and under a manual .lock().
  // The release patterns (send after .unlock(), after the guard's scope
  // closes, staged-drain) must stay silent.
  const Golden expected = {{29, "lock-across-wire"}, {35, "lock-across-wire"}};
  EXPECT_EQ(lint_fixture("bad_lock_across_wire.cpp"), expected);
}

TEST(Lint, LockAcrossWireHonoursSuppression) {
  const std::string body =
      "mu.lock();\n"
      "sender.send(0, x);  // cyclops-lint: allow(lock-across-wire)\n"
      "mu.unlock();\n";
  EXPECT_TRUE(lint_file("x.cpp", body).empty());
}

TEST(Lint, CleanFixtureHasZeroFindings) {
  EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

TEST(Lint, CsrOutsideGraphFixture) {
  const Golden expected = {{7, "csr-outside-graph"},
                           {12, "csr-outside-graph"},
                           {13, "csr-outside-graph"},
                           {15, "csr-outside-graph"}};
  EXPECT_EQ(lint_fixture("bad_csr_outside_graph.cpp"), expected);
}

TEST(Lint, OutboxEscapeFixture) {
  // Lines 12/13: raw OutBox grabs via '.' and '->'. Line 20 is suppressed;
  // a declaration of a method named outbox and a string literal stay silent.
  const Golden expected = {{12, "outbox-outside-runtime"},
                           {13, "outbox-outside-runtime"}};
  EXPECT_EQ(lint_fixture("bad_outbox_escape.cpp"), expected);
}

TEST(Lint, DeltaEscapeFixture) {
  // Lines 13/14: in-place apply() via '.' and '->'. The applied() copy,
  // apply() on non-delta receivers (SnapshotStore, a GAS program), and the
  // suppressed harness call all stay silent.
  const Golden expected = {{13, "delta-outside-ingest"},
                           {14, "delta-outside-ingest"}};
  EXPECT_EQ(lint_fixture("bad_delta_escape.cpp"), expected);
}

TEST(Lint, CoreAndIngestPathsExemptDeltaApply) {
  const std::string body =
      "core::TopologyDelta delta;\ndelta.apply(edges);\n";
  EXPECT_TRUE(lint_file("src/cyclops/core/mutation.cpp", body).empty());
  EXPECT_TRUE(lint_file("src/cyclops/ingest/ingestor.cpp", body).empty());
  const auto findings = lint_file("src/cyclops/service/snapshot.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "delta-outside-ingest");
}

TEST(Lint, RuntimeAndSimPathsExemptOutbox) {
  const std::string body = "auto& box = fabric.outbox(from, lane);\n";
  EXPECT_TRUE(lint_file("src/cyclops/runtime/sync_channel.hpp", body).empty());
  EXPECT_TRUE(lint_file("src/cyclops/sim/fabric.hpp", body).empty());
  const auto findings = lint_file("src/cyclops/bsp/engine.hpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "outbox-outside-runtime");
}

TEST(Lint, GraphPathExemptsCsr) {
  const std::string body = "graph::Csr g = graph::Csr::build(e);\n";
  EXPECT_TRUE(lint_file("src/cyclops/graph/store.cpp", body).empty());
  const auto findings = lint_file("src/cyclops/core/engine.hpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "csr-outside-graph");
}

TEST(Lint, CommonPathExemptsRawThread) {
  const std::string body = "std::mutex m;\nstd::thread t;\n";
  EXPECT_TRUE(lint_file("src/cyclops/common/sync.hpp", body).empty());
  EXPECT_EQ(lint_file("src/cyclops/core/engine.hpp", body).size(), 2u);
}

TEST(Lint, ClassifyPath) {
  EXPECT_TRUE(classify_path("src/cyclops/common/thread_pool.cpp").in_common);
  EXPECT_FALSE(classify_path("src/cyclops/runtime/superstep_driver.hpp").in_common);
  EXPECT_TRUE(classify_path("src/cyclops/graph/compact_csr.cpp").in_graph);
  EXPECT_FALSE(classify_path("src/cyclops/gas/gas_layout.cpp").in_graph);
  EXPECT_TRUE(classify_path("src/cyclops/runtime/sync_channel.hpp").in_runtime);
  EXPECT_TRUE(classify_path("src/cyclops/sim/fabric.cpp").in_sim);
  EXPECT_FALSE(classify_path("src/cyclops/bsp/engine.hpp").in_runtime);
  EXPECT_FALSE(classify_path("src/cyclops/bsp/engine.hpp").in_sim);
  EXPECT_TRUE(classify_path("src/cyclops/core/mutation.cpp").in_core);
  EXPECT_TRUE(classify_path("src/cyclops/ingest/ingestor.cpp").in_ingest);
  EXPECT_FALSE(classify_path("src/cyclops/service/snapshot.cpp").in_core);
  EXPECT_FALSE(classify_path("src/cyclops/service/snapshot.cpp").in_ingest);
  // tests/ is exempt from the ownership rules (it exercises the concrete
  // layers), but lint_fixtures/ simulate engine code and stay checked.
  EXPECT_TRUE(classify_path("tests/test_graph_store.cpp").in_tests);
  EXPECT_FALSE(classify_path("tests/lint_fixtures/bad_csr_outside_graph.cpp").in_tests);
  EXPECT_FALSE(classify_path("src/cyclops/core/engine.hpp").in_tests);
}

TEST(Lint, TestsPathExemptsOwnershipRulesOnly) {
  const std::string body =
      "graph::Csr g;\n"
      "auto& box = fabric.outbox(0, 0);\n"
      "core::TopologyDelta d;\n"
      "d.apply(edges);\n"
      "std::thread t;\n";
  // Ownership rules are exempt under tests/, but raw-thread still fires —
  // test code shares the engine's concurrency discipline.
  const auto findings = lint_file("tests/test_graph_store.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-thread");
}

TEST(Lint, SuppressionOnPreviousLine) {
  const std::string body =
      "// cyclops-lint: allow(determinism)\n"
      "long t = time(nullptr);\n"
      "long u = time(nullptr);\n";
  const auto findings = lint_file("x.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);  // only the unsuppressed second call
}

TEST(LintDetail, CodeOnlyStripsCommentsAndStrings) {
  bool in_block = false;
  EXPECT_EQ(cyclops::lint::detail::code_only("x = 1; // rand()", in_block), "x = 1; ");
  EXPECT_EQ(cyclops::lint::detail::code_only("s = \"rand()\";", in_block), "s = \";");
  EXPECT_EQ(cyclops::lint::detail::code_only("a /* rand() */ b", in_block), "a  b");
  EXPECT_FALSE(in_block);
  EXPECT_EQ(cyclops::lint::detail::code_only("a /* open", in_block), "a ");
  EXPECT_TRUE(in_block);
  EXPECT_EQ(cyclops::lint::detail::code_only("still closed */ tail", in_block), " tail");
  EXPECT_FALSE(in_block);
}

TEST(LintDetail, CodeOnlyHandlesEscapedQuotes) {
  bool in_block = false;
  // An escaped quote must not close the literal early: rand() stays hidden.
  EXPECT_EQ(cyclops::lint::detail::code_only("s = \"\\\"rand()\\\"\";", in_block),
            "s = \";");
  EXPECT_EQ(cyclops::lint::detail::code_only("c = '\\''; t = time(0);", in_block),
            "c = '; t = time(0);");
  EXPECT_EQ(cyclops::lint::detail::code_only("s = \"tail\\\\\"; rand();", in_block),
            "s = \"; rand();");
  EXPECT_FALSE(in_block);
}

TEST(LintDetail, CodeOnlyHandlesRawStrings) {
  using cyclops::lint::detail::ScanState;
  ScanState st;
  // The inner quote of a raw literal is not a terminator: everything up to
  // )" is literal body, including the ") that used to desync the scanner.
  EXPECT_EQ(cyclops::lint::detail::code_only("s = R\"(a \" b rand() c)\";", st), "s = R\";");
  EXPECT_FALSE(st.in_raw);
  // Custom delimiter: )x" inside the body is not the close for )delim".
  EXPECT_EQ(cyclops::lint::detail::code_only("s = R\"delim(x)\" rand() )delim\";", st),
            "s = R\";");
  EXPECT_FALSE(st.in_raw);
  // Encoding prefixes still open a raw literal.
  EXPECT_EQ(cyclops::lint::detail::code_only("s = u8R\"(time(0))\";", st), "s = u8R\";");
  // Multi-line raw literal: state carries across lines, the body never
  // reaches token scans, and code after the close on the final line does.
  EXPECT_EQ(cyclops::lint::detail::code_only("s = R\"(first", st), "s = R\"");
  EXPECT_TRUE(st.in_raw);
  EXPECT_EQ(cyclops::lint::detail::code_only("rand() \" /* neither */", st), "");
  EXPECT_TRUE(st.in_raw);
  EXPECT_EQ(cyclops::lint::detail::code_only(")\"; t = time(0);", st), "; t = time(0);");
  EXPECT_FALSE(st.in_raw);
  // An identifier ending in R is not a raw-string prefix.
  EXPECT_EQ(cyclops::lint::detail::code_only("x = VAR\"s\";", st), "x = VAR\";");
}

TEST(Lint, RawStringBodyDoesNotTriggerRules) {
  // Before the ScanState fix the inner `"` ended the literal scan early and
  // the rest of the body leaked into code — time( here would false-positive.
  const std::string body =
      "const char* doc = R\"(call \" time(now) \" anywhere)\";\n"
      "const char* multi = R\"(spans\n"
      "time(lines) rand()\n"
      ")\";\n";
  EXPECT_TRUE(lint_file("x.cpp", body).empty());
}

TEST(LintDetail, HasTokenRespectsIdentifierBoundary) {
  EXPECT_TRUE(cyclops::lint::detail::has_token("t = time(nullptr);", "time("));
  EXPECT_TRUE(cyclops::lint::detail::has_token("std::rand();", "rand("));
  EXPECT_FALSE(cyclops::lint::detail::has_token("elapsed_time(x);", "time("));
  EXPECT_FALSE(cyclops::lint::detail::has_token("strand(x);", "rand("));
}

TEST(LintDetail, RangeForTarget) {
  EXPECT_EQ(cyclops::lint::detail::range_for_target(
                "for (const auto& [k, v] : bucket.combined) {"),
            "combined");
  EXPECT_EQ(cyclops::lint::detail::range_for_target("for (auto x : ys)"), "ys");
  EXPECT_EQ(cyclops::lint::detail::range_for_target("for (int i = 0; i < n; ++i)"), "");
  EXPECT_EQ(cyclops::lint::detail::range_for_target("x = a ? b : c;"), "");
}

// --- former line-scanner gaps, now fixed in the legacy engine too ---------

TEST(Lint, MultilineDeclsFixture) {
  // A declaration split across lines used to be invisible to the per-line
  // ident collectors; the flattened scan captures it.
  const Golden expected = {{22, "unordered-wire"}, {30, "delta-outside-ingest"}};
  EXPECT_EQ(lint_fixture("bad_multiline_decls.cpp"), expected);
}

TEST(Lint, LockLongScopeFixture) {
  // Both the lock-scope and range-for body scans used to stop 60 lines in;
  // real brace tracking carries them to the end of the scope.
  const Golden expected = {{87, "lock-across-wire"}, {93, "unordered-wire"}};
  EXPECT_EQ(lint_fixture("bad_lock_long_scope.cpp"), expected);
}

// =========================================================================
// cyclops-analyze: the token engine (tools/analyze/)
// =========================================================================

namespace az = cyclops::analyze;

std::string fixture_path(const std::string& name) {
  return std::string(CYCLOPS_LINT_FIXTURE_DIR) + "/" + name;
}

/// Analyzes one fixture with the token engine (per-file passes only) and
/// returns sorted (line, rule) pairs.
Golden analyze_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  Golden got;
  for (const az::Finding& f : az::analyze_file(path, slurp(path))) {
    got.emplace_back(f.line, f.rule);
  }
  std::sort(got.begin(), got.end());
  return got;
}

// --- lexer ----------------------------------------------------------------

TEST(AnalyzeLexer, TokensCarryKindsAndDepths) {
  const az::LexedFile lf = az::lex("int f(int a) {\n  return g(a);\n}\n");
  ASSERT_GE(lf.tokens.size(), 12u);
  EXPECT_EQ(lf.tokens[0].kind, az::Tok::kIdent);
  EXPECT_EQ(lf.tokens[0].text, "int");
  EXPECT_EQ(lf.tokens[0].line, 1);
  // Openers report the depth they create; closers report the outer depth.
  const az::Token& open_brace = lf.tokens[6];
  ASSERT_EQ(open_brace.text, "{");
  EXPECT_EQ(open_brace.brace_depth, 1);
  const az::Token& close_brace = lf.tokens.back();
  ASSERT_EQ(close_brace.text, "}");
  EXPECT_EQ(close_brace.brace_depth, 0);
  // `return g(a);` sits inside the body at brace depth 1.
  EXPECT_EQ(lf.tokens[7].text, "return");
  EXPECT_EQ(lf.tokens[7].brace_depth, 1);
  EXPECT_EQ(lf.tokens[7].line, 2);
}

TEST(AnalyzeLexer, CommentsVanishAndLiteralsCollapse) {
  const az::LexedFile lf =
      az::lex("x = 1; // rand()\ns = \"time(0)\"; /* srand(7) */ y = '\\'';\n");
  for (const az::Token& t : lf.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "time");
    EXPECT_NE(t.text, "srand");
  }
  bool saw_string = false, saw_char = false;
  for (const az::Token& t : lf.tokens) {
    if (t.kind == az::Tok::kString) saw_string = true;
    if (t.kind == az::Tok::kChar) saw_char = true;
  }
  EXPECT_TRUE(saw_string);
  EXPECT_TRUE(saw_char);
}

TEST(AnalyzeLexer, RawStringsWithDelimitersAndPrefixes) {
  // The inner quote and the fake close of a custom-delimiter raw literal are
  // body text; code after the real close is lexed again.
  const az::LexedFile lf = az::lex(
      "s = R\"delim(x)\" rand() )delim\";\n"
      "t = u8R\"(spans\nlines rand())\";\nu = time(0);\n");
  int idents_named_rand = 0, idents_named_time = 0;
  for (const az::Token& t : lf.tokens) {
    if (t.kind == az::Tok::kIdent && t.text == "rand") ++idents_named_rand;
    if (t.kind == az::Tok::kIdent && t.text == "time") ++idents_named_time;
  }
  EXPECT_EQ(idents_named_rand, 0);
  EXPECT_EQ(idents_named_time, 1);
  // Line counting survives the multi-line raw body: time( is on line 4.
  for (const az::Token& t : lf.tokens) {
    if (t.text == "time") {
      EXPECT_EQ(t.line, 4);
    }
  }
}

TEST(AnalyzeLexer, IncludeDirectivesExtracted) {
  const az::LexedFile lf = az::lex(
      "#include \"cyclops/graph/store.hpp\"\n"
      "#include <vector>\n"
      "int x = 1 < 2;  // not an include, not a header-name\n");
  ASSERT_EQ(lf.includes.size(), 2u);
  EXPECT_EQ(lf.includes[0].target, "cyclops/graph/store.hpp");
  EXPECT_FALSE(lf.includes[0].angled);
  EXPECT_EQ(lf.includes[0].line, 1);
  EXPECT_EQ(lf.includes[1].target, "vector");
  EXPECT_TRUE(lf.includes[1].angled);
  int headers = 0;
  for (const az::Token& t : lf.tokens) {
    if (t.kind == az::Tok::kHeader) ++headers;
  }
  EXPECT_EQ(headers, 1);  // only the angled form emits a kHeader token
}

TEST(AnalyzeLexer, MatchAngleSplitsShiftAndStopsAtSemicolon) {
  const az::LexedFile lf =
      az::lex("std::unordered_map<K, std::vector<V>> m;\nint a = x < y; b;\n");
  // Find the first '<' and match it: must land on the '>>' token.
  std::size_t open = 0;
  while (lf.tokens[open].text != "<") ++open;
  const std::size_t close = az::match_angle(lf.tokens, open);
  ASSERT_LT(close, lf.tokens.size());
  EXPECT_EQ(lf.tokens[close].text, ">>");
  EXPECT_EQ(lf.tokens[close + 1].text, "m");
  // The comparison on line 2 never closes before the ';' — unbalanced.
  std::size_t cmp = close;
  while (lf.tokens[cmp].text != "<" || lf.tokens[cmp].line != 2) ++cmp;
  EXPECT_EQ(az::match_angle(lf.tokens, cmp), lf.tokens.size());
}

// --- the 8 ported rules: fixture goldens + parity with the line scanner ---

Golden analyze_fixture_shared_rules(const std::string& name) {
  // Restrict to the 8 rules both engines implement, so fixtures can be
  // parity-checked even when the token engine adds its own findings.
  static const std::vector<std::string> kShared = {
      "determinism",       "unordered-wire",        "raw-thread",
      "wire-narrowing",    "lock-across-wire",      "csr-outside-graph",
      "outbox-outside-runtime", "delta-outside-ingest"};
  Golden got;
  for (const auto& [line, rule] : analyze_fixture(name)) {
    if (std::find(kShared.begin(), kShared.end(), rule) != kShared.end()) {
      got.emplace_back(line, rule);
    }
  }
  return got;
}

TEST(AnalyzeParity, BothEnginesAgreeOnEverySharedFixture) {
  for (const char* name :
       {"bad_determinism.cpp", "bad_unordered_wire.cpp", "bad_raw_thread.cpp",
        "bad_narrowing.cpp", "bad_lock_across_wire.cpp",
        "bad_csr_outside_graph.cpp", "bad_outbox_escape.cpp",
        "bad_delta_escape.cpp", "bad_multiline_decls.cpp",
        "bad_lock_long_scope.cpp", "clean.cpp"}) {
    EXPECT_EQ(analyze_fixture_shared_rules(name), lint_fixture(name))
        << "engines disagree on " << name;
  }
}

TEST(Analyze, MultilineDeclsFixture) {
  const Golden expected = {{22, "unordered-wire"}, {30, "delta-outside-ingest"}};
  EXPECT_EQ(analyze_fixture("bad_multiline_decls.cpp"), expected);
}

TEST(Analyze, LockLongScopeFixture) {
  const Golden expected = {{87, "lock-across-wire"}, {93, "unordered-wire"}};
  EXPECT_EQ(analyze_fixture("bad_lock_long_scope.cpp"), expected);
}

TEST(Analyze, CleanFixtureHasZeroFindings) {
  EXPECT_TRUE(analyze_fixture("clean.cpp").empty());
}

TEST(Analyze, ExactTokenMatchingBeatsSubstrings) {
  // `resend(` and `elapsed_time(` must not fire; real calls must.
  EXPECT_TRUE(az::analyze_file("x.cpp", "resend(0, v); elapsed_time(x);\n").empty());
  const auto findings =
      az::analyze_file("x.cpp", "mu.lock();\nsender.send(0, v);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-across-wire");
}

// --- frozen-view pass -----------------------------------------------------

TEST(AnalyzeFrozenView, Fixture) {
  const Golden expected = {{24, "frozen-view"},
                           {28, "frozen-view"},
                           {32, "frozen-view"},
                           {37, "frozen-view"}};
  EXPECT_EQ(analyze_fixture("bad_frozen_view.cpp"), expected);
}

TEST(AnalyzeFrozenView, BindingExpiresWithItsScope) {
  // The regression that motivated scope tracking: a const view pointer in
  // one function must not taint an unrelated local of the same name in the
  // next function (service/snapshot.cpp had exactly this shape).
  const std::string body =
      "void a(const graph::GraphStore* s) {\n"
      "  (void)s;\n"
      "}\n"
      "void b() {\n"
      "  Stats s;\n"
      "  s.swap(other);\n"   // swap is a mutator, but s is not a view here
      "  s.epochs = 3;\n"
      "}\n";
  EXPECT_TRUE(az::analyze_file("x.cpp", body).empty());
}

TEST(AnalyzeFrozenView, ConstCastOnTrackedIdentifier) {
  const std::string body =
      "void f(const graph::GraphStore& view) {\n"
      "  auto* w = const_cast<Store*>(&view);\n"  // cast names no view type,
      "  (void)w;\n"                              // but the argument does
      "}\n";
  const auto findings = az::analyze_file("x.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "frozen-view");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(AnalyzeFrozenView, AssignmentThroughMemberChain) {
  const std::string body =
      "void f(const graph::Snapshot* snap) {\n"
      "  snap->stats.epochs = 7;\n"
      "  snap->slots[i] = x;\n"
      "}\n";
  const auto findings = az::analyze_file("x.cpp", body);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "frozen-view");
  EXPECT_EQ(findings[1].rule, "frozen-view");
}

TEST(AnalyzeFrozenView, PrototypeParameterBindsNothing) {
  const std::string body =
      "void f(const graph::GraphStore& view);\n"
      "void g() {\n"
      "  Buffer view;\n"
      "  view.clear();\n"  // unrelated local after a prototype-only binding
      "}\n";
  EXPECT_TRUE(az::analyze_file("x.cpp", body).empty());
}

// --- include-layering + cycle pass ----------------------------------------

std::vector<az::SourceFile> include_tree_files() {
  const char* rel[] = {
      "include_tree/src/cyclops/graph/upward.hpp",
      "include_tree/src/cyclops/runtime/skip.hpp",
      "include_tree/src/cyclops/core/cycle_a.hpp",
      "include_tree/src/cyclops/core/cycle_b.hpp",
  };
  std::vector<az::SourceFile> files;
  for (const char* r : rel) {
    const std::string path = fixture_path(r);
    files.push_back(az::SourceFile{path, slurp(path)});
  }
  return files;
}

TEST(AnalyzeInclude, LayerAndCycleFindingsOnFixtureTree) {
  az::AnalyzeOptions opt;
  opt.jobs = 1;
  const std::vector<az::Finding> findings =
      az::analyze_files(include_tree_files(), opt);
  Golden got;
  for (const az::Finding& f : findings) {
    got.emplace_back(f.line, f.rule);
  }
  std::sort(got.begin(), got.end());
  const Golden expected = {
      {1, "include-cycle"},      // anchored at cycle_a.hpp line 1
      {3, "include-layering"},   // graph -> runtime: upward
      {4, "include-layering"},   // runtime -> graph: undeclared skip edge
  };
  EXPECT_EQ(got, expected);
  // The two layering messages must name the violation class.
  for (const az::Finding& f : findings) {
    if (f.line == 3) {
      EXPECT_NE(f.message.find("upward include"), std::string::npos);
    }
    if (f.line == 4) {
      EXPECT_NE(f.message.find("skip-layer include"), std::string::npos);
    }
  }
}

TEST(AnalyzeInclude, LayerMapIsSelfConsistent) {
  for (const az::LayerSpec& layer : az::layer_map()) {
    for (const std::string_view dep : layer.allowed) {
      const az::LayerSpec* target = nullptr;
      for (const az::LayerSpec& other : az::layer_map()) {
        if (other.name == dep) target = &other;
      }
      ASSERT_NE(target, nullptr)
          << layer.name << " allows unknown layer " << dep;
      // Declared dependencies never point up the DAG; the only same-rank
      // edges are the common <-> verify instrumentation pair.
      EXPECT_LE(target->rank, layer.rank)
          << layer.name << " -> " << dep << " would be an upward edge";
    }
  }
}

TEST(AnalyzeInclude, RealTreeLayersAreClean) {
  // The real src/cyclops/ tree must satisfy its own layer map. (The ctest
  // gate analyze_tree checks the full tree through the CLI; this keeps the
  // property unit-testable without the binary.)
  namespace fs = std::filesystem;
  std::vector<az::SourceFile> files;
  const fs::path root = fs::path(CYCLOPS_LINT_FIXTURE_DIR).parent_path().parent_path() /
                        "src" / "cyclops";
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    files.push_back(az::SourceFile{entry.path().string(), slurp(entry.path().string())});
  }
  ASSERT_GT(files.size(), 40u);  // the whole engine tree, not a subset
  az::AnalyzeOptions opt;
  opt.jobs = 1;
  for (const az::Finding& f : az::analyze_files(files, opt)) {
    EXPECT_TRUE(f.rule != "include-layering" && f.rule != "include-cycle")
        << f.file << ":" << f.line << ": " << f.message;
  }
}

// --- suppression markers --------------------------------------------------

TEST(AnalyzeSuppression, SameLineAndLineAbove) {
  const std::string same_line =
      "long t = time(nullptr);  // cyclops-lint: allow(determinism)\n";
  EXPECT_TRUE(az::analyze_file("x.cpp", same_line).empty());

  const std::string line_above =
      "// cyclops-lint: allow(determinism)\n"
      "long t = time(nullptr);\n"
      "long u = time(nullptr);\n";
  const auto findings = az::analyze_file("x.cpp", line_above);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);  // only the marker-adjacent line is covered
}

TEST(AnalyzeSuppression, AnalyzeSpelledMarkerWorksToo) {
  const std::string body =
      "long t = time(nullptr);  // cyclops-analyze: allow(determinism)\n";
  EXPECT_TRUE(az::analyze_file("x.cpp", body).empty());
}

TEST(AnalyzeSuppression, UnknownRuleMarkerIsItselfAFinding) {
  // The deliberately-typoed marker in this string literal is visible to the
  // raw-line marker scan when the analyzer runs over this file, so the line
  // carries a real allow(bad-suppression) acknowledging it.
  const std::string body =  // cyclops-analyze: allow(bad-suppression)
      "long t = time(nullptr);  // cyclops-lint: allow(determinsm)\n";
  const auto findings = az::analyze_file("x.cpp", body);
  // The typoed marker suppresses nothing AND is flagged as bad-suppression.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "bad-suppression");
  EXPECT_EQ(findings[1].rule, "determinism");
}

TEST(AnalyzeSuppression, DocumentationPlaceholderIsIgnored) {
  // `allow(<rule>)` in prose must neither suppress nor fire bad-suppression:
  // `<` is not a rule-name character, so it is not a marker at all.
  const std::string body =
      "// suppress with: cyclops-lint: allow(<rule>)\n"
      "int x = 0;\n";
  EXPECT_TRUE(az::analyze_file("x.cpp", body).empty());
}

TEST(AnalyzeSuppression, FrozenViewMarkerSuppresses) {
  const std::string body =
      "void f(const graph::GraphStore& view) {\n"
      "  // cyclops-analyze: allow(frozen-view)\n"
      "  view.clear();\n"
      "}\n";
  EXPECT_TRUE(az::analyze_file("x.cpp", body).empty());
}

// --- SARIF ----------------------------------------------------------------

TEST(AnalyzeSarif, GoldenRoundTrip) {
  // Byte-for-byte against the checked-in golden: key order, indentation,
  // and sort order are all part of the contract (CI diffs the artifact).
  const std::vector<az::Finding> findings = az::analyze_file(
      "tests/lint_fixtures/bad_frozen_view.cpp",
      slurp(fixture_path("bad_frozen_view.cpp")));
  EXPECT_EQ(az::to_sarif(findings), slurp(fixture_path("sarif_golden.json")));
}

TEST(AnalyzeSarif, ShapeCarriesSchemaRulesAndLocations) {
  std::vector<az::Finding> findings;
  findings.push_back(az::Finding{"/abs/checkout/src/cyclops/core/engine.hpp", 42,
                                 "determinism", "a \"quoted\" message"});
  const std::string s = az::to_sarif(findings);
  EXPECT_NE(s.find("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""),
            std::string::npos);
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"ruleId\": \"determinism\""), std::string::npos);
  // Paths normalize repo-relative; JSON strings escape.
  EXPECT_NE(s.find("\"uri\": \"src/cyclops/core/engine.hpp\""), std::string::npos);
  EXPECT_NE(s.find("\"startLine\": 42"), std::string::npos);
  EXPECT_NE(s.find("a \\\"quoted\\\" message"), std::string::npos);
  // Every registered rule is described in the driver block.
  for (const az::RuleInfo& r : az::kRules) {
    EXPECT_NE(s.find("\"id\": \"" + std::string(r.id) + "\""), std::string::npos);
  }
}

TEST(AnalyzeSarif, EmptyRunIsValidJsonShape) {
  const std::string s = az::to_sarif({});
  EXPECT_NE(s.find("\"results\": [\n      ]"), std::string::npos);
}

// --- baselines ------------------------------------------------------------

TEST(AnalyzeBaseline, ParsesEntriesCommentsAndErrors) {
  const az::Baseline b = az::parse_baseline(
      "# a comment\n"
      "\n"
      "src/cyclops/core/engine.hpp:42: [determinism]\n"
      "  tests/test_sim.cpp:7: [outbox-outside-runtime]  \n"
      "not a baseline line\n");
  ASSERT_EQ(b.entries.size(), 2u);
  EXPECT_EQ(b.entries[0].path, "src/cyclops/core/engine.hpp");
  EXPECT_EQ(b.entries[0].line, 42);
  EXPECT_EQ(b.entries[0].rule, "determinism");
  EXPECT_EQ(b.entries[1].path, "tests/test_sim.cpp");
  ASSERT_EQ(b.parse_errors.size(), 1u);
  EXPECT_NE(b.parse_errors[0].find("line 5"), std::string::npos);
}

TEST(AnalyzeBaseline, FiltersByRepoRelativeSuffixAndReportsStale) {
  std::vector<az::Finding> findings;
  findings.push_back(az::Finding{"/ci/checkout/src/cyclops/core/engine.hpp", 42,
                                 "determinism", "m"});
  findings.push_back(az::Finding{"/ci/checkout/src/cyclops/core/engine.hpp", 43,
                                 "determinism", "m"});
  az::Baseline b = az::parse_baseline(
      "src/cyclops/core/engine.hpp:42: [determinism]\n"   // matches 42
      "src/cyclops/core/engine.hpp:99: [determinism]\n"); // stale
  const std::vector<az::Finding> rest = az::apply_baseline(findings, b);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].line, 43);
  const auto stale = az::stale_entries(b);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0]->line, 99);
}

TEST(AnalyzeBaseline, WriteParseRoundTripCoversEverything) {
  const std::string path = fixture_path("bad_frozen_view.cpp");
  const std::vector<az::Finding> findings = az::analyze_file(path, slurp(path));
  ASSERT_FALSE(findings.empty());
  az::Baseline b = az::parse_baseline(az::write_baseline(findings));
  EXPECT_TRUE(b.parse_errors.empty());
  EXPECT_TRUE(az::apply_baseline(findings, b).empty());
  EXPECT_TRUE(az::stale_entries(b).empty());
}

// --- driver ---------------------------------------------------------------

TEST(AnalyzeDriver, FindingsAreIdenticalAcrossJobCounts) {
  std::vector<az::SourceFile> files;
  for (const char* name :
       {"bad_determinism.cpp", "bad_unordered_wire.cpp", "bad_raw_thread.cpp",
        "bad_narrowing.cpp", "bad_lock_across_wire.cpp",
        "bad_csr_outside_graph.cpp", "bad_outbox_escape.cpp",
        "bad_delta_escape.cpp", "bad_multiline_decls.cpp",
        "bad_lock_long_scope.cpp", "bad_frozen_view.cpp", "clean.cpp"}) {
    const std::string path = fixture_path(name);
    files.push_back(az::SourceFile{path, slurp(path)});
  }
  az::AnalyzeOptions serial, parallel;
  serial.jobs = 1;
  parallel.jobs = 4;
  const std::vector<az::Finding> a = az::analyze_files(files, serial);
  const std::vector<az::Finding> b = az::analyze_files(files, parallel);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].file, b[i].file);
    EXPECT_EQ(a[i].line, b[i].line);
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].message, b[i].message);
  }
}

TEST(AnalyzeDriver, RepoRelativeNormalizesPrefixes) {
  EXPECT_EQ(az::repo_relative("/ci/checkout/src/cyclops/x.hpp"),
            "src/cyclops/x.hpp");
  EXPECT_EQ(az::repo_relative("src/cyclops/x.hpp"), "src/cyclops/x.hpp");
  EXPECT_EQ(az::repo_relative("tools/lint_core.hpp"), "tools/lint_core.hpp");
  EXPECT_EQ(az::repo_relative("../repo/tests/test_lint.cpp"),
            "tests/test_lint.cpp");
}

}  // namespace
