// Unit tests for the cyclops-lint rule engine (tools/lint_core.hpp), run
// against the fixture files in tests/lint_fixtures/. Each fixture documents
// its expected findings inline; the assertions here are the goldens.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint_core.hpp"

namespace {

using cyclops::lint::Finding;
using cyclops::lint::classify_path;
using cyclops::lint::lint_file;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lints one fixture and returns sorted (line, rule) pairs — the shape the
/// golden assertions compare against.
std::vector<std::pair<int, std::string>> lint_fixture(const std::string& name) {
  const std::string path = std::string(CYCLOPS_LINT_FIXTURE_DIR) + "/" + name;
  std::vector<std::pair<int, std::string>> got;
  for (const Finding& f : lint_file(path, slurp(path))) {
    got.emplace_back(f.line, f.rule);
  }
  std::sort(got.begin(), got.end());
  return got;
}

using Golden = std::vector<std::pair<int, std::string>>;

TEST(Lint, DeterminismFixture) {
  const Golden expected = {{9, "determinism"},
                           {10, "determinism"},
                           {11, "determinism"},
                           {12, "determinism"}};
  EXPECT_EQ(lint_fixture("bad_determinism.cpp"), expected);
}

TEST(Lint, UnorderedWireFixture) {
  const Golden expected = {{19, "unordered-wire"}, {23, "unordered-wire"}};
  EXPECT_EQ(lint_fixture("bad_unordered_wire.cpp"), expected);
}

TEST(Lint, RawThreadFixture) {
  const Golden expected = {{11, "raw-thread"},
                           {12, "raw-thread"},
                           {13, "raw-thread"}};
  EXPECT_EQ(lint_fixture("bad_raw_thread.cpp"), expected);
}

TEST(Lint, NarrowingFixtureHonoursSuppression) {
  // Line 15 carries `// cyclops-lint: allow(wire-narrowing)` and must not
  // appear; lines 17/18 split the cast and the wire call across lines.
  const Golden expected = {{13, "wire-narrowing"}, {14, "wire-narrowing"}};
  EXPECT_EQ(lint_fixture("bad_narrowing.cpp"), expected);
}

TEST(Lint, LockAcrossWireFixture) {
  // Lines 29/35: a send under an RAII guard and under a manual .lock().
  // The release patterns (send after .unlock(), after the guard's scope
  // closes, staged-drain) must stay silent.
  const Golden expected = {{29, "lock-across-wire"}, {35, "lock-across-wire"}};
  EXPECT_EQ(lint_fixture("bad_lock_across_wire.cpp"), expected);
}

TEST(Lint, LockAcrossWireHonoursSuppression) {
  const std::string body =
      "mu.lock();\n"
      "sender.send(0, x);  // cyclops-lint: allow(lock-across-wire)\n"
      "mu.unlock();\n";
  EXPECT_TRUE(lint_file("x.cpp", body).empty());
}

TEST(Lint, CleanFixtureHasZeroFindings) {
  EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

TEST(Lint, CsrOutsideGraphFixture) {
  const Golden expected = {{7, "csr-outside-graph"},
                           {12, "csr-outside-graph"},
                           {13, "csr-outside-graph"},
                           {15, "csr-outside-graph"}};
  EXPECT_EQ(lint_fixture("bad_csr_outside_graph.cpp"), expected);
}

TEST(Lint, OutboxEscapeFixture) {
  // Lines 12/13: raw OutBox grabs via '.' and '->'. Line 20 is suppressed;
  // a declaration of a method named outbox and a string literal stay silent.
  const Golden expected = {{12, "outbox-outside-runtime"},
                           {13, "outbox-outside-runtime"}};
  EXPECT_EQ(lint_fixture("bad_outbox_escape.cpp"), expected);
}

TEST(Lint, DeltaEscapeFixture) {
  // Lines 13/14: in-place apply() via '.' and '->'. The applied() copy,
  // apply() on non-delta receivers (SnapshotStore, a GAS program), and the
  // suppressed harness call all stay silent.
  const Golden expected = {{13, "delta-outside-ingest"},
                           {14, "delta-outside-ingest"}};
  EXPECT_EQ(lint_fixture("bad_delta_escape.cpp"), expected);
}

TEST(Lint, CoreAndIngestPathsExemptDeltaApply) {
  const std::string body =
      "core::TopologyDelta delta;\ndelta.apply(edges);\n";
  EXPECT_TRUE(lint_file("src/cyclops/core/mutation.cpp", body).empty());
  EXPECT_TRUE(lint_file("src/cyclops/ingest/ingestor.cpp", body).empty());
  const auto findings = lint_file("src/cyclops/service/snapshot.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "delta-outside-ingest");
}

TEST(Lint, RuntimeAndSimPathsExemptOutbox) {
  const std::string body = "auto& box = fabric.outbox(from, lane);\n";
  EXPECT_TRUE(lint_file("src/cyclops/runtime/sync_channel.hpp", body).empty());
  EXPECT_TRUE(lint_file("src/cyclops/sim/fabric.hpp", body).empty());
  const auto findings = lint_file("src/cyclops/bsp/engine.hpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "outbox-outside-runtime");
}

TEST(Lint, GraphPathExemptsCsr) {
  const std::string body = "graph::Csr g = graph::Csr::build(e);\n";
  EXPECT_TRUE(lint_file("src/cyclops/graph/store.cpp", body).empty());
  const auto findings = lint_file("src/cyclops/core/engine.hpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "csr-outside-graph");
}

TEST(Lint, CommonPathExemptsRawThread) {
  const std::string body = "std::mutex m;\nstd::thread t;\n";
  EXPECT_TRUE(lint_file("src/cyclops/common/sync.hpp", body).empty());
  EXPECT_EQ(lint_file("src/cyclops/core/engine.hpp", body).size(), 2u);
}

TEST(Lint, ClassifyPath) {
  EXPECT_TRUE(classify_path("src/cyclops/common/thread_pool.cpp").in_common);
  EXPECT_FALSE(classify_path("src/cyclops/runtime/superstep_driver.hpp").in_common);
  EXPECT_TRUE(classify_path("src/cyclops/graph/compact_csr.cpp").in_graph);
  EXPECT_FALSE(classify_path("src/cyclops/gas/gas_layout.cpp").in_graph);
  EXPECT_TRUE(classify_path("src/cyclops/runtime/sync_channel.hpp").in_runtime);
  EXPECT_TRUE(classify_path("src/cyclops/sim/fabric.cpp").in_sim);
  EXPECT_FALSE(classify_path("src/cyclops/bsp/engine.hpp").in_runtime);
  EXPECT_FALSE(classify_path("src/cyclops/bsp/engine.hpp").in_sim);
  EXPECT_TRUE(classify_path("src/cyclops/core/mutation.cpp").in_core);
  EXPECT_TRUE(classify_path("src/cyclops/ingest/ingestor.cpp").in_ingest);
  EXPECT_FALSE(classify_path("src/cyclops/service/snapshot.cpp").in_core);
  EXPECT_FALSE(classify_path("src/cyclops/service/snapshot.cpp").in_ingest);
}

TEST(Lint, SuppressionOnPreviousLine) {
  const std::string body =
      "// cyclops-lint: allow(determinism)\n"
      "long t = time(nullptr);\n"
      "long u = time(nullptr);\n";
  const auto findings = lint_file("x.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);  // only the unsuppressed second call
}

TEST(LintDetail, CodeOnlyStripsCommentsAndStrings) {
  bool in_block = false;
  EXPECT_EQ(cyclops::lint::detail::code_only("x = 1; // rand()", in_block), "x = 1; ");
  EXPECT_EQ(cyclops::lint::detail::code_only("s = \"rand()\";", in_block), "s = \";");
  EXPECT_EQ(cyclops::lint::detail::code_only("a /* rand() */ b", in_block), "a  b");
  EXPECT_FALSE(in_block);
  EXPECT_EQ(cyclops::lint::detail::code_only("a /* open", in_block), "a ");
  EXPECT_TRUE(in_block);
  EXPECT_EQ(cyclops::lint::detail::code_only("still closed */ tail", in_block), " tail");
  EXPECT_FALSE(in_block);
}

TEST(LintDetail, CodeOnlyHandlesEscapedQuotes) {
  bool in_block = false;
  // An escaped quote must not close the literal early: rand() stays hidden.
  EXPECT_EQ(cyclops::lint::detail::code_only("s = \"\\\"rand()\\\"\";", in_block),
            "s = \";");
  EXPECT_EQ(cyclops::lint::detail::code_only("c = '\\''; t = time(0);", in_block),
            "c = '; t = time(0);");
  EXPECT_EQ(cyclops::lint::detail::code_only("s = \"tail\\\\\"; rand();", in_block),
            "s = \"; rand();");
  EXPECT_FALSE(in_block);
}

TEST(LintDetail, CodeOnlyHandlesRawStrings) {
  using cyclops::lint::detail::ScanState;
  ScanState st;
  // The inner quote of a raw literal is not a terminator: everything up to
  // )" is literal body, including the ") that used to desync the scanner.
  EXPECT_EQ(cyclops::lint::detail::code_only("s = R\"(a \" b rand() c)\";", st), "s = R\";");
  EXPECT_FALSE(st.in_raw);
  // Custom delimiter: )x" inside the body is not the close for )delim".
  EXPECT_EQ(cyclops::lint::detail::code_only("s = R\"delim(x)\" rand() )delim\";", st),
            "s = R\";");
  EXPECT_FALSE(st.in_raw);
  // Encoding prefixes still open a raw literal.
  EXPECT_EQ(cyclops::lint::detail::code_only("s = u8R\"(time(0))\";", st), "s = u8R\";");
  // Multi-line raw literal: state carries across lines, the body never
  // reaches token scans, and code after the close on the final line does.
  EXPECT_EQ(cyclops::lint::detail::code_only("s = R\"(first", st), "s = R\"");
  EXPECT_TRUE(st.in_raw);
  EXPECT_EQ(cyclops::lint::detail::code_only("rand() \" /* neither */", st), "");
  EXPECT_TRUE(st.in_raw);
  EXPECT_EQ(cyclops::lint::detail::code_only(")\"; t = time(0);", st), "; t = time(0);");
  EXPECT_FALSE(st.in_raw);
  // An identifier ending in R is not a raw-string prefix.
  EXPECT_EQ(cyclops::lint::detail::code_only("x = VAR\"s\";", st), "x = VAR\";");
}

TEST(Lint, RawStringBodyDoesNotTriggerRules) {
  // Before the ScanState fix the inner `"` ended the literal scan early and
  // the rest of the body leaked into code — time( here would false-positive.
  const std::string body =
      "const char* doc = R\"(call \" time(now) \" anywhere)\";\n"
      "const char* multi = R\"(spans\n"
      "time(lines) rand()\n"
      ")\";\n";
  EXPECT_TRUE(lint_file("x.cpp", body).empty());
}

TEST(LintDetail, HasTokenRespectsIdentifierBoundary) {
  EXPECT_TRUE(cyclops::lint::detail::has_token("t = time(nullptr);", "time("));
  EXPECT_TRUE(cyclops::lint::detail::has_token("std::rand();", "rand("));
  EXPECT_FALSE(cyclops::lint::detail::has_token("elapsed_time(x);", "time("));
  EXPECT_FALSE(cyclops::lint::detail::has_token("strand(x);", "rand("));
}

TEST(LintDetail, RangeForTarget) {
  EXPECT_EQ(cyclops::lint::detail::range_for_target(
                "for (const auto& [k, v] : bucket.combined) {"),
            "combined");
  EXPECT_EQ(cyclops::lint::detail::range_for_target("for (auto x : ys)"), "ys");
  EXPECT_EQ(cyclops::lint::detail::range_for_target("for (int i = 0; i < n; ++i)"), "");
  EXPECT_EQ(cyclops::lint::detail::range_for_target("x = a ? b : c;"), "");
}

}  // namespace
