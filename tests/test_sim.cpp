// Tests for the simulated cluster fabric: message delivery, bundling,
// local/remote accounting, cost model arithmetic, counters.

#include <gtest/gtest.h>

#include "cyclops/common/serialize.hpp"
#include "cyclops/sim/cost_model.hpp"
#include "cyclops/sim/counters.hpp"
#include "cyclops/sim/fabric.hpp"

namespace cyclops::sim {
namespace {

std::vector<std::uint8_t> payload(std::uint32_t v) {
  ByteWriter w;
  w.write(v);
  return w.take();
}

TEST(CostModel, RemoteAndLocalCosts) {
  const CostModel m = CostModel::hama_java();
  EXPECT_DOUBLE_EQ(m.remote_cost_us(10, 1000),
                   10 * m.per_remote_msg_us + 1000 * m.per_byte_us);
  EXPECT_DOUBLE_EQ(m.local_cost_us(10, 1000), m.remote_cost_us(10, 1000) * 0.3);
  EXPECT_GT(m.barrier_cost_us(48), m.barrier_cost_us(6));
}

TEST(CostModel, PresetsOrdered) {
  // Wire-model calibration: batched in-engine RPC dispatch is costliest for
  // Hama's per-object path, cheapest for Cyclops' bundled primitive arrays.
  EXPECT_GT(CostModel::hama_java().per_remote_msg_us,
            CostModel::boost_cpp().per_remote_msg_us);
  EXPECT_LT(CostModel::cyclops_sync().per_remote_msg_us,
            CostModel::hama_java().per_remote_msg_us);
  EXPECT_DOUBLE_EQ(CostModel::zero().remote_cost_us(100, 100), 0.0);
}

TEST(Topology, MachinePlacement) {
  const Topology t{3, 4};
  EXPECT_EQ(t.total_workers(), 12u);
  EXPECT_EQ(t.machine_of(0), 0u);
  EXPECT_EQ(t.machine_of(3), 0u);
  EXPECT_EQ(t.machine_of(4), 1u);
  EXPECT_TRUE(t.same_machine(8, 11));
  EXPECT_FALSE(t.same_machine(3, 4));
}

TEST(NetCounters, SnapshotArithmetic) {
  NetCounters c;
  c.add_remote(3, 100);
  c.add_local(2, 50);
  c.add_package();
  const NetSnapshot s = c.snapshot();
  EXPECT_EQ(s.total_messages(), 5u);
  EXPECT_EQ(s.total_bytes(), 150u);
  NetSnapshot sum = s;
  sum += s;
  EXPECT_EQ(sum.remote_messages, 6u);
  EXPECT_EQ((sum - s).remote_messages, 3u);
  c.reset();
  EXPECT_EQ(c.snapshot().total_messages(), 0u);
}

TEST(Fabric, DeliversBundledPackages) {
  Fabric f(Topology{2, 1}, CostModel::zero());
  f.outbox(0).send(1, payload(7));
  f.outbox(0).send(1, payload(9));
  const ExchangeStats x = f.exchange(2);
  EXPECT_EQ(x.net.remote_messages, 2u);
  EXPECT_EQ(x.net.packages, 1u);  // bundled into one transfer
  const auto in = f.incoming(1);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].from, 0u);
  EXPECT_EQ(in[0].message_count, 2u);
  ByteReader r(in[0].bytes);
  EXPECT_EQ(r.read<std::uint32_t>(), 7u);
  EXPECT_EQ(r.read<std::uint32_t>(), 9u);
}

TEST(Fabric, LocalVsRemoteAccounting) {
  // 2 machines x 2 workers: worker 0->1 is local, 0->2 crosses machines.
  Fabric f(Topology{2, 2}, CostModel::hama_java());
  f.outbox(0).send(1, payload(1));
  f.outbox(0).send(2, payload(2));
  const ExchangeStats x = f.exchange(4);
  EXPECT_EQ(x.net.local_messages, 1u);
  EXPECT_EQ(x.net.remote_messages, 1u);
  EXPECT_GT(x.modeled_comm_s, 0.0);
  EXPECT_GT(x.modeled_barrier_s, 0.0);
}

TEST(Fabric, SelfSendIsLocal) {
  Fabric f(Topology{1, 2}, CostModel::zero());
  f.outbox(0).send(0, payload(5));
  const ExchangeStats x = f.exchange(2);
  EXPECT_EQ(x.net.local_messages, 1u);
  ASSERT_EQ(f.incoming(0).size(), 1u);
}

TEST(Fabric, ExchangeClearsOutboxes) {
  Fabric f(Topology{2, 1}, CostModel::zero());
  f.outbox(0).send(1, payload(1));
  (void)f.exchange(2);
  const ExchangeStats x2 = f.exchange(2);
  EXPECT_EQ(x2.net.total_messages(), 0u);
  EXPECT_TRUE(f.incoming(1).empty());
}

TEST(Fabric, LanesAreIndependent) {
  Fabric f(Topology{2, 1}, CostModel::zero(), /*lanes=*/3);
  f.outbox(0, 0).send(1, payload(1));
  f.outbox(0, 2).send(1, payload(2));
  const ExchangeStats x = f.exchange(2);
  EXPECT_EQ(x.net.remote_messages, 2u);
  EXPECT_EQ(f.incoming(1).size(), 2u);  // one package per lane
}

TEST(Fabric, TotalsAccumulateAcrossExchanges) {
  Fabric f(Topology{2, 1}, CostModel::boost_cpp());
  f.outbox(0).send(1, payload(1));
  (void)f.exchange(2);
  f.outbox(1).send(0, payload(2));
  (void)f.exchange(2);
  EXPECT_EQ(f.totals().remote_messages, 2u);
  EXPECT_GT(f.total_modeled_comm_s(), 0.0);
  EXPECT_GT(f.total_modeled_barrier_s(), 0.0);
}

TEST(Fabric, PeakBufferedBytesReported) {
  Fabric f(Topology{2, 1}, CostModel::zero());
  f.outbox(0).send(1, payload(1));
  f.outbox(0).send(1, payload(2));
  const ExchangeStats x = f.exchange(2);
  EXPECT_EQ(x.peak_buffered_bytes, 8u);  // two u32 payloads
}

TEST(Fabric, MaxMachineCostNotSum) {
  // Two machines each sending the same volume: modeled time equals one
  // machine's cost (they overlap), not the sum.
  const CostModel m = CostModel::boost_cpp();
  Fabric f(Topology{2, 1}, m);
  f.outbox(0).send(1, payload(1));
  const double one_way = f.exchange(2).modeled_comm_s;
  f.outbox(0).send(1, payload(1));
  f.outbox(1).send(0, payload(1));
  const double both_ways = f.exchange(2).modeled_comm_s;
  EXPECT_LT(both_ways, 2.0 * one_way);
}

}  // namespace
}  // namespace cyclops::sim
