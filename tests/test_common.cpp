// Unit tests for the common substrate: RNG, bitset, spinlock, thread pool,
// simulated-parallel execution, serialization, stats, tables.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "cyclops/common/bitset.hpp"
#include "cyclops/common/check.hpp"
#include "cyclops/common/exec.hpp"
#include "cyclops/common/rng.hpp"
#include "cyclops/common/serialize.hpp"
#include "cyclops/common/spinlock.hpp"
#include "cyclops/common/stats.hpp"
#include "cyclops/common/sync.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/common/thread_pool.hpp"

namespace cyclops {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyUnitVariance) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, LognormalMatchesParameters) {
  Rng rng(13);
  // E[log X] = mu, Var[log X] = sigma^2.
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double lx = std::log(rng.next_lognormal(0.4, 1.2));
    sum += lx;
    sq += lx * lx;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.4, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 1.44, 0.1);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(DenseBitset, SetTestClear) {
  DenseBitset bs(130);
  EXPECT_EQ(bs.count(), 0u);
  bs.set(0);
  bs.set(64);
  bs.set(129);
  EXPECT_TRUE(bs.test(0));
  EXPECT_TRUE(bs.test(64));
  EXPECT_TRUE(bs.test(129));
  EXPECT_FALSE(bs.test(1));
  EXPECT_EQ(bs.count(), 3u);
  bs.clear(64);
  EXPECT_FALSE(bs.test(64));
  EXPECT_EQ(bs.count(), 2u);
}

TEST(DenseBitset, SetAllRespectsTail) {
  DenseBitset bs(70);
  bs.set_all();
  EXPECT_EQ(bs.count(), 70u);
  bs.clear_all();
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_FALSE(bs.any());
}

TEST(DenseBitset, ForEachVisitsInOrder) {
  DenseBitset bs(200);
  const std::vector<std::size_t> expected{3, 64, 65, 199};
  for (auto i : expected) bs.set(i);
  std::vector<std::size_t> seen;
  bs.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DenseBitset, ConcurrentSetIsLossless) {
  DenseBitset bs(10000);
  std::vector<Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < 10000; i += 4) bs.set(i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bs.count(), 10000u);
}

TEST(CheckDeathTest, FailureReportsExpressionFileAndLine) {
  // The diagnostic must carry the stringized expression and the call site —
  // that is what makes a cold-path CHECK in a recovery loop debuggable from
  // a CI log alone.
  EXPECT_DEATH(CYCLOPS_CHECK(2 + 2 == 5), "CYCLOPS_CHECK failed: 2 \\+ 2 == 5");
  EXPECT_DEATH(CYCLOPS_CHECK(2 + 2 == 5), "at .*test_common\\.cpp:[0-9]+ in ");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  CYCLOPS_CHECK(1 + 1 == 2);
  CYCLOPS_DCHECK(1 + 1 == 2);
}

TEST(SpinLock, CountsAcquisitionsAndExcludes) {
  SpinLock lock;
  std::uint64_t counter = 0;
  std::vector<Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4000u);
  EXPECT_EQ(lock.acquisitions(), 4000u);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);  // no worker threads; runs inline
  int count = 0;
  pool.parallel_tasks(5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_tasks(7, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 7);
  }
}

TEST(Exec, ChunkRangePartitionsExactly) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 100u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 7u, 13u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const ChunkRange r = chunk_range(n, chunks, c);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_LE(r.begin, r.end);
        covered += r.end - r.begin;
        prev_end = r.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(Exec, TimedExecutorsReturnsMaxTime) {
  ThreadPool pool(1);
  static double sink = 0;
  const double t = timed_executors(pool, 3, [](std::size_t i) {
    if (i == 1) {
      double x = 0;
      for (int k = 0; k < 2000000; ++k) x += k;
      sink = x;  // keep the loop observable
    }
  });
  EXPECT_GT(t, 0.0);
  EXPECT_GT(sink, 0.0);
}

TEST(Serialize, RoundTripScalars) {
  ByteWriter w;
  w.write<std::uint32_t>(42);
  w.write<double>(3.5);
  w.write_string("cyclops");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<std::uint32_t>(), 42u);
  EXPECT_EQ(r.read<double>(), 3.5);
  EXPECT_EQ(r.read_string(), "cyclops");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, RoundTripVector) {
  ByteWriter w;
  const std::vector<std::uint64_t> v{1, 2, 3, 99};
  w.write_vector(v);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_vector<std::uint64_t>(), v);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.p50, 3);
}

TEST(Stats, ImbalanceOfUniformIsOne) {
  const std::vector<double> v{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(imbalance(v), 1.0);
  const std::vector<double> skew{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(imbalance(skew), 4.0);
}

TEST(Stats, LogHistogramBuckets) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.buckets()[0], 1u);  // value 0
  EXPECT_EQ(h.buckets()[1], 1u);  // [1,2)
  EXPECT_EQ(h.buckets()[2], 2u);  // [2,4)
  EXPECT_EQ(h.buckets()[11], 1u); // [1024,2048)
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::fmt(1.234, 2)});
  t.add_row({"b", Table::fmt_int(42)});
  const std::string out = t.render("demo");
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace cyclops
