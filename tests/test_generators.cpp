// Tests for the synthetic dataset generators: each must deliver the
// structural property its experiment depends on (degree skew, bipartite
// structure, planted communities, lattice + log-normal weights), and be
// deterministic in the seed.

#include <gtest/gtest.h>

#include <cmath>

#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/graph/gstats.hpp"

namespace cyclops::graph::gen {
namespace {

TEST(ErdosRenyi, SizeAndDeterminism) {
  const EdgeList a = erdos_renyi(100, 500, 7);
  const EdgeList b = erdos_renyi(100, 500, 7);
  EXPECT_EQ(a.num_edges(), 500u);
  EXPECT_EQ(a.num_vertices(), 100u);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(ErdosRenyi, DifferentSeedsDiffer) {
  const EdgeList a = erdos_renyi(100, 500, 7);
  const EdgeList b = erdos_renyi(100, 500, 8);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.num_edges(); ++i) same += a.edges()[i] == b.edges()[i];
  EXPECT_LT(same, 50u);
}

TEST(Rmat, VertexBoundAndDedup) {
  const EdgeList e = rmat(10, 5000, 3);
  EXPECT_LE(e.num_vertices(), 1u << 10);
  EXPECT_LE(e.num_edges(), 5000u);
  EXPECT_GT(e.num_edges(), 3000u);  // some dedup loss is expected, not most
  // No duplicates after dedup.
  for (std::size_t i = 1; i < e.num_edges(); ++i) {
    const Edge& prev = e.edges()[i - 1];
    const Edge& cur = e.edges()[i];
    EXPECT_FALSE(prev.src == cur.src && prev.dst == cur.dst);
  }
}

TEST(Rmat, ProducesSkewedDegrees) {
  const Csr g = Csr::build(rmat(12, 40000, 5));
  const GraphStats s = compute_stats(g);
  // Web-like skew: max out-degree far above the mean.
  EXPECT_GT(s.out_degree.max, 10.0 * s.out_degree.mean);
  const double alpha = powerlaw_exponent(g);
  EXPECT_LT(alpha, -0.8);  // heavy tail slopes downward in log-log
}

TEST(PreferentialAttachment, HubsEmerge) {
  const Csr g = Csr::build(preferential_attachment(2000, 3, 11));
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.out_degree.max, 40.0);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(Bipartite, RespectsSides) {
  BipartiteSpec spec;
  spec.users = 200;
  spec.items = 50;
  spec.ratings_per_user = 5;
  const EdgeList e = bipartite_ratings(spec, 13);
  EXPECT_EQ(e.num_vertices(), 250u);
  for (const Edge& edge : e.edges()) {
    const bool src_user = edge.src < spec.users;
    const bool dst_user = edge.dst < spec.users;
    EXPECT_NE(src_user, dst_user) << "edge crosses sides";
    EXPECT_GE(edge.weight, 1.0);
    EXPECT_LE(edge.weight, 5.0);
  }
}

TEST(Bipartite, NoDuplicateRatings) {
  BipartiteSpec spec;
  spec.users = 100;
  spec.items = 40;
  spec.ratings_per_user = 8;
  EdgeList e = bipartite_ratings(spec, 17);
  auto& edges = e.edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_FALSE(edges[i - 1].src == edges[i].src && edges[i - 1].dst == edges[i].dst)
        << "duplicate rating " << edges[i].src << "->" << edges[i].dst;
  }
}

TEST(PlantedCommunities, MostEdgesInternal) {
  CommunitySpec spec;
  spec.communities = 10;
  spec.group_size = 50;
  spec.degree = 8;
  spec.p_internal = 0.9;
  const EdgeList e = planted_communities(spec, 19);
  std::size_t internal = 0;
  for (const Edge& edge : e.edges()) {
    if (edge.src / spec.group_size == edge.dst / spec.group_size) ++internal;
  }
  const double frac = static_cast<double>(internal) / static_cast<double>(e.num_edges());
  EXPECT_GT(frac, 0.8);
  EXPECT_LT(frac, 0.98);
}

TEST(RoadGrid, LatticeStructureAndWeights) {
  RoadSpec spec;
  spec.rows = 20;
  spec.cols = 30;
  spec.shortcut_fraction = 0.0;
  const EdgeList e = road_grid(spec, 23);
  EXPECT_EQ(e.num_vertices(), 600u);
  // 4-neighbor lattice: rows*(cols-1) + cols*(rows-1) undirected edges, x2.
  EXPECT_EQ(e.num_edges(), 2u * (20 * 29 + 30 * 19));
  for (const Edge& edge : e.edges()) EXPECT_GT(edge.weight, 0.0);
}

TEST(RoadGrid, ShortcutsAdded) {
  RoadSpec spec;
  spec.rows = 30;
  spec.cols = 30;
  spec.shortcut_fraction = 0.05;
  const EdgeList with = road_grid(spec, 29);
  spec.shortcut_fraction = 0.0;
  const EdgeList without = road_grid(spec, 29);
  EXPECT_GT(with.num_edges(), without.num_edges());
}

TEST(RoadGrid, HighDiameterProperty) {
  // A road network stands in for RoadCA precisely because its diameter is
  // large — SSSP needs many supersteps (unlike on web graphs).
  RoadSpec spec;
  spec.rows = 25;
  spec.cols = 25;
  spec.shortcut_fraction = 0.0;
  const Csr g = Csr::build(road_grid(spec, 31));
  // BFS depth from corner is rows+cols-2.
  EXPECT_EQ(reachable_from(g, 0), 625u);
}

/// Property sweep: every generator is deterministic in its seed.
class GeneratorDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorDeterminism, AllGeneratorsStable) {
  const std::uint64_t seed = GetParam();
  auto same = [](const EdgeList& a, const EdgeList& b) {
    if (a.num_edges() != b.num_edges()) return false;
    for (std::size_t i = 0; i < a.num_edges(); ++i) {
      if (!(a.edges()[i] == b.edges()[i])) return false;
    }
    return true;
  };
  EXPECT_TRUE(same(rmat(9, 2000, seed), rmat(9, 2000, seed)));
  EXPECT_TRUE(same(preferential_attachment(300, 2, seed),
                   preferential_attachment(300, 2, seed)));
  BipartiteSpec bp{100, 30, 4};
  EXPECT_TRUE(same(bipartite_ratings(bp, seed), bipartite_ratings(bp, seed)));
  CommunitySpec cs{5, 20, 6, 0.85};
  EXPECT_TRUE(same(planted_communities(cs, seed), planted_communities(cs, seed)));
  RoadSpec rs{10, 10, 0.02, 0.4, 1.2};
  EXPECT_TRUE(same(road_grid(rs, seed), road_grid(rs, seed)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDeterminism,
                         ::testing::Values(1ull, 42ull, 2014ull, 0xdeadbeefull));

}  // namespace
}  // namespace cyclops::graph::gen
