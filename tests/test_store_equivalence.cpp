// Cross-store equivalence gate: every engine must produce bit-identical
// vertex values AND a bit-identical Fabric::wire_digest no matter which
// GraphStore backend holds the graph. This is the correctness net under the
// storage refactor — if a backend reorders adjacency, mis-decodes a varint,
// or pages a stale window, either the values or the on-wire traffic digest
// diverges from the in-memory baseline and this suite fails.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "cyclops/algorithms/cc.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/edge_list.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/vertex_cut.hpp"

namespace cyclops {
namespace {

struct RunResult {
  std::uint64_t digest = 0;
  std::vector<double> values;
};

/// Doubles must match to the bit, not to a tolerance: backends that change
/// accumulation order would still pass EXPECT_NEAR.
void expect_bit_identical(const RunResult& want, const RunResult& got,
                          graph::StoreKind kind) {
  EXPECT_EQ(want.digest, got.digest)
      << "wire digest diverged on " << graph::store_kind_name(kind);
  ASSERT_EQ(want.values.size(), got.values.size());
  ASSERT_EQ(0, std::memcmp(want.values.data(), got.values.data(),
                           want.values.size() * sizeof(double)))
      << "vertex values diverged on " << graph::store_kind_name(kind);
}

/// Runs `run` once per store backend over the same edge list and requires
/// every run to match the in-memory baseline bit-for-bit. A 1 MB cap keeps
/// the stream backend honest (many window reloads, spill budget armed).
template <typename Run>
void for_all_stores(const graph::EdgeList& e, Run run) {
  std::optional<RunResult> baseline;
  for (const graph::StoreKind kind :
       {graph::StoreKind::kMemory, graph::StoreKind::kCompact, graph::StoreKind::kStream}) {
    graph::StoreOptions opts;
    opts.kind = kind;
    opts.mem_cap_bytes = 1 << 20;
    const auto store = graph::make_store(e, opts);
    const RunResult r = run(*store);
    EXPECT_NE(r.digest, 0u) << "engine put nothing on the wire";
    if (!baseline) {
      baseline = r;
    } else {
      expect_bit_identical(*baseline, r, kind);
    }
  }
}

TEST(StoreEquivalence, BspPageRank) {
  for_all_stores(graph::gen::rmat(9, 3000, 17), [](const graph::GraphStore& g) {
    algo::PageRankBsp pr;
    pr.epsilon = 1e-10;
    bsp::Config cfg = bsp::Config::workers(4);
    cfg.max_supersteps = 100;
    bsp::Engine<algo::PageRankBsp> engine(g, partition::HashPartitioner{}.partition(g, 4),
                                          pr, cfg);
    (void)engine.run();
    const auto span = engine.values();
    return RunResult{engine.fabric().wire_digest(),
                     std::vector<double>(span.begin(), span.end())};
  });
}

TEST(StoreEquivalence, BspSssp) {
  for_all_stores(graph::gen::road_grid({24, 24, 0.1}, 3), [](const graph::GraphStore& g) {
    algo::SsspBsp sssp;
    sssp.source = 0;
    bsp::Config cfg = bsp::Config::workers(4);
    cfg.max_supersteps = 300;
    bsp::Engine<algo::SsspBsp> engine(g, partition::HashPartitioner{}.partition(g, 4),
                                      sssp, cfg);
    (void)engine.run();
    const auto span = engine.values();
    return RunResult{engine.fabric().wire_digest(),
                     std::vector<double>(span.begin(), span.end())};
  });
}

TEST(StoreEquivalence, CyclopsCc) {
  for_all_stores(graph::gen::erdos_renyi(600, 1500, 31), [](const graph::GraphStore& g) {
    algo::CcCyclops cc;
    core::Config cfg = core::Config::cyclops(2, 2);
    cfg.max_supersteps = 200;
    core::Engine<algo::CcCyclops> engine(g, partition::HashPartitioner{}.partition(g, 4),
                                         cc, cfg);
    (void)engine.run();
    const auto labels = engine.values();
    return RunResult{engine.fabric().wire_digest(),
                     std::vector<double>(labels.begin(), labels.end())};
  });
}

TEST(StoreEquivalence, CyclopsPageRankAblation) {
  // The force_all_active ablation floods every superstep with full traffic —
  // the heaviest wire load, so the most sensitive digest.
  for_all_stores(graph::gen::rmat(9, 3000, 53), [](const graph::GraphStore& g) {
    algo::PageRankCyclops pr;
    pr.epsilon = 1e-9;
    core::Config cfg = core::Config::cyclops(2, 2);
    cfg.max_supersteps = 30;
    cfg.force_all_active = true;
    core::Engine<algo::PageRankCyclops> engine(
        g, partition::HashPartitioner{}.partition(g, 4), pr, cfg);
    (void)engine.run();
    return RunResult{engine.fabric().wire_digest(), engine.values()};
  });
}

TEST(StoreEquivalence, CyclopsMtSssp) {
  for_all_stores(graph::gen::road_grid({20, 20, 0.1}, 9), [](const graph::GraphStore& g) {
    algo::SsspCyclops sssp;
    core::Config cfg = core::Config::cyclops_mt(2, 2, 2);
    cfg.max_supersteps = 300;
    core::Engine<algo::SsspCyclops> engine(g, partition::HashPartitioner{}.partition(g, 2),
                                           sssp, cfg);
    (void)engine.run();
    return RunResult{engine.fabric().wire_digest(), engine.values()};
  });
}

TEST(StoreEquivalence, GasPageRank) {
  for_all_stores(graph::gen::rmat(9, 3000, 71), [](const graph::GraphStore& g) {
    algo::PageRankGas pr;
    pr.num_vertices = g.num_vertices();
    pr.epsilon = 1e-10;
    gas::Config cfg = gas::Config::workers(4);
    cfg.max_iterations = 100;
    gas::Engine<algo::PageRankGas> engine(
        g, partition::GreedyVertexCut{}.partition(g, 4), pr, cfg);
    (void)engine.run();
    std::vector<double> ranks;
    for (const auto& v : engine.values()) ranks.push_back(v.rank);
    return RunResult{engine.fabric().wire_digest(), std::move(ranks)};
  });
}

TEST(StoreEquivalence, GasSssp) {
  for_all_stores(graph::gen::road_grid({20, 20, 0.1}, 13), [](const graph::GraphStore& g) {
    algo::SsspGas sssp;
    sssp.source = 0;
    gas::Config cfg = gas::Config::workers(3);
    cfg.max_iterations = 300;
    gas::Engine<algo::SsspGas> engine(
        g, partition::RandomVertexCut{}.partition(g, 3), sssp, cfg);
    (void)engine.run();
    return RunResult{engine.fabric().wire_digest(), engine.values()};
  });
}

}  // namespace
}  // namespace cyclops
