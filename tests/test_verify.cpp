// Tests for the immutable-view invariant checker (src/cyclops/verify/).
//
// The centerpiece is a deliberately-buggy mini engine: a hand-driven two-
// worker superstep that commits the three classic Cyclops discipline breaks
// — a mirror write during compute, a non-owner update, and a stale-epoch
// snapshot read — and asserts the checker catches each one with the right
// phase/superstep/vertex attribution. A clean run of the same mini engine and
// a real Cyclops PageRank run prove the checker stays silent on correct code
// (the zero-false-positive criterion).
//
// Every test skips when CYCLOPS_VERIFY is off: the hooks compile to no-ops
// and there is nothing to observe.
#include <gtest/gtest.h>

#include <vector>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/verify/verify.hpp"
#include "test_util.hpp"

namespace cyclops::verify {
namespace {

#define SKIP_UNLESS_VERIFY()                                               \
  do {                                                                     \
    if (!kEnabled) GTEST_SKIP() << "built without -DCYCLOPS_VERIFY=ON";    \
  } while (0)

/// Collects violations instead of aborting.
struct Collector {
  std::vector<Violation> seen;
  Handler handler() {
    return [this](const Violation& v) { seen.push_back(v); };
  }
};

/// A two-worker mini engine driven by hand. Worker 0 masters vertices {0, 1},
/// worker 1 masters {2, 3}; each worker hosts one replica of the other's
/// first master (slot layout: [master0, master1, replica]).
struct MiniEngine {
  EngineChecker checker;

  MiniEngine() {
    checker.register_worker(0, 2, {0, 1, 2}, {0, 0, 1});
    checker.register_worker(1, 2, {2, 3, 0}, {1, 1, 0});
  }

  /// One discipline-respecting superstep: compute reads, send-phase owner
  /// apply + wire emission, exchange-phase replica updates, sync barrier.
  void run_clean_superstep(Superstep s) {
    checker.begin_superstep(s);
    {
      PhaseScope cmp(checker, Phase::kCompute);
      checker.on_view_read(0, 0, 2, CYCLOPS_VLOC);  // master reads its replica
      checker.on_view_read(1, 1, 2, CYCLOPS_VLOC);
      checker.on_master_stage(0, 0, 0, CYCLOPS_VLOC);  // set_value staging
    }
    {
      PhaseScope snd(checker, Phase::kSend);
      checker.on_master_write(0, 0, 0, CYCLOPS_VLOC);  // owner applies
      checker.on_master_write(1, 1, 0, CYCLOPS_VLOC);
      checker.on_send(0, 1, CYCLOPS_VLOC);
    }
    {
      PhaseScope exch(checker, Phase::kExchange);
      checker.on_replica_write(0, 0, 2, CYCLOPS_VLOC);  // own receiver updates
      checker.on_replica_write(1, 1, 2, CYCLOPS_VLOC);
    }
    { PhaseScope syn(checker, Phase::kSync); }
  }
};

TEST(Verify, CleanSuperstepHasZeroViolations) {
  SKIP_UNLESS_VERIFY();
  MiniEngine mini;
  Collector col;
  mini.checker.set_handler(col.handler());
  for (Superstep s = 0; s < 3; ++s) mini.run_clean_superstep(s);
  EXPECT_TRUE(col.seen.empty());
  EXPECT_EQ(mini.checker.violations(), 0u);
  EXPECT_GT(mini.checker.accesses_checked(), 0u);
}

TEST(Verify, MirrorWriteInComputeIsCaught) {
  SKIP_UNLESS_VERIFY();
  MiniEngine mini;
  Collector col;
  mini.checker.set_handler(col.handler());
  mini.checker.begin_superstep(4);
  PhaseScope cmp(mini.checker, Phase::kCompute);
  // The seeded bug: mutating worker 0's replica slot while vertex programs
  // are reading the immutable view.
  mini.checker.on_replica_write(0, 0, 2, SourceLoc{"buggy.cpp", 10});
  ASSERT_EQ(col.seen.size(), 1u);
  const Violation& v = col.seen[0];
  EXPECT_EQ(v.kind, ViolationKind::kReplicaWriteInCompute);
  EXPECT_EQ(v.vertex, 2u);  // slot 2 on worker 0 hosts global vertex 2
  EXPECT_EQ(v.slot, 2u);
  EXPECT_EQ(v.worker, 0u);
  EXPECT_EQ(v.current.phase, Phase::kCompute);
  EXPECT_EQ(v.current.superstep, 4u);
  EXPECT_STREQ(v.current.loc.file, "buggy.cpp");
  EXPECT_EQ(v.current.loc.line, 10);
}

TEST(Verify, NonOwnerUpdateIsCaughtWithBothSites) {
  SKIP_UNLESS_VERIFY();
  MiniEngine mini;
  Collector col;
  mini.checker.set_handler(col.handler());
  mini.run_clean_superstep(0);  // stamps slot 0 via the legal owner apply
  mini.checker.begin_superstep(1);
  PhaseScope snd(mini.checker, Phase::kSend);
  // The seeded bug: worker 1 reaches across and writes worker 0's master.
  mini.checker.on_master_write(1, 0, 0, SourceLoc{"buggy.cpp", 20});
  ASSERT_EQ(col.seen.size(), 1u);
  const Violation& v = col.seen[0];
  EXPECT_EQ(v.kind, ViolationKind::kNonOwnerWrite);
  EXPECT_EQ(v.vertex, 0u);
  EXPECT_EQ(v.worker, 0u);          // the violated state lives on worker 0
  EXPECT_EQ(v.current.worker, 1u);  // ...but worker 1 executed the write
  EXPECT_EQ(v.current.superstep, 1u);
  // The conflicting earlier access is superstep 0's legal owner apply.
  ASSERT_TRUE(v.previous.valid());
  EXPECT_EQ(v.previous.worker, 0u);
  EXPECT_EQ(v.previous.superstep, 0u);
  EXPECT_EQ(v.previous.phase, Phase::kSend);
}

TEST(Verify, StaleViewReadIsCaught) {
  SKIP_UNLESS_VERIFY();
  MiniEngine mini;
  Collector col;
  mini.checker.set_handler(col.handler());
  mini.checker.begin_superstep(2);
  {
    // A buggy engine that applies before compute finished: the send-phase
    // write lands in the same superstep a later compute read observes.
    PhaseScope snd(mini.checker, Phase::kSend);
    mini.checker.on_master_write(0, 0, 1, SourceLoc{"buggy.cpp", 30});
  }
  {
    PhaseScope cmp(mini.checker, Phase::kCompute);
    mini.checker.on_view_read(0, 0, 1, SourceLoc{"buggy.cpp", 31});
  }
  ASSERT_EQ(col.seen.size(), 1u);
  const Violation& v = col.seen[0];
  EXPECT_EQ(v.kind, ViolationKind::kStaleViewRead);
  EXPECT_EQ(v.vertex, 1u);
  EXPECT_EQ(v.current.loc.line, 31);
  ASSERT_TRUE(v.previous.valid());
  EXPECT_EQ(v.previous.loc.line, 30);
  EXPECT_EQ(v.previous.phase, Phase::kSend);
}

TEST(Verify, SendDuringComputeIsCaught) {
  SKIP_UNLESS_VERIFY();
  MiniEngine mini;
  Collector col;
  mini.checker.set_handler(col.handler());
  mini.checker.begin_superstep(0);
  PhaseScope cmp(mini.checker, Phase::kCompute);
  mini.checker.on_send(0, 1, SourceLoc{"buggy.cpp", 40});
  ASSERT_EQ(col.seen.size(), 1u);
  EXPECT_EQ(col.seen[0].kind, ViolationKind::kSendOutsidePhase);
  EXPECT_EQ(col.seen[0].current.phase, Phase::kCompute);
}

TEST(Verify, StaleEpochReadIsCaughtWithRetireSite) {
  SKIP_UNLESS_VERIFY();
  Collector col;
  EpochRegistry& reg = EpochRegistry::instance();
  reg.set_handler(col.handler());
  reg.publish(71);
  reg.on_read(71, SourceLoc{"service.cpp", 50});  // live: silent
  EXPECT_TRUE(col.seen.empty());
  reg.retire(71, SourceLoc{"service.cpp", 60});
  // The seeded bug: a job holds a snapshot pointer past its retirement.
  reg.on_read(71, SourceLoc{"buggy.cpp", 70});
  ASSERT_EQ(col.seen.size(), 1u);
  const Violation& v = col.seen[0];
  EXPECT_EQ(v.kind, ViolationKind::kStaleEpochRead);
  EXPECT_EQ(v.epoch, 71u);
  EXPECT_EQ(v.current.loc.line, 70);
  ASSERT_TRUE(v.previous.valid());
  EXPECT_EQ(v.previous.loc.line, 60);  // attributed to the retire site
  reg.set_handler(Handler{});
}

TEST(Verify, ViolationDescribeNamesPhaseSuperstepVertexAndSites) {
  SKIP_UNLESS_VERIFY();
  MiniEngine mini;
  Collector col;
  mini.checker.set_handler(col.handler());
  mini.checker.begin_superstep(9);
  PhaseScope cmp(mini.checker, Phase::kCompute);
  mini.checker.on_replica_write(0, 0, 2, SourceLoc{"buggy.cpp", 80});
  ASSERT_EQ(col.seen.size(), 1u);
  const std::string d = col.seen[0].describe();
  EXPECT_NE(d.find("replica-write-in-compute"), std::string::npos);
  EXPECT_NE(d.find("vertex 2"), std::string::npos);
  EXPECT_NE(d.find("compute"), std::string::npos);
  EXPECT_NE(d.find("superstep 9"), std::string::npos);
  EXPECT_NE(d.find("buggy.cpp:80"), std::string::npos);
}

// The real engine, instrumented end-to-end, must be violation-free: PageRank
// on an R-MAT graph across 4 workers exercises compute reads, staging,
// owner applies, wire sends, and replica receives every superstep.
TEST(Verify, CyclopsPageRankRunsCleanUnderVerification) {
  SKIP_UNLESS_VERIFY();
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1200, 5));
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-10;
  core::Config cfg = core::Config::cyclops(2, 2);
  cfg.max_supersteps = 60;
  core::Engine<algo::PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
  Collector col;
  engine.verifier().set_handler(col.handler());
  (void)engine.run();
  EXPECT_TRUE(col.seen.empty()) << col.seen.front().describe();
  EXPECT_EQ(engine.verifier().violations(), 0u);
  EXPECT_GT(engine.verifier().accesses_checked(), 0u);
  EXPECT_NE(engine.verifier().summary().find("0 violations"), std::string::npos);
}

}  // namespace
}  // namespace cyclops::verify
