// Fault-tolerance tests (§3.6): checkpoint/restore under crash injection at
// arbitrary superstep boundaries, durability through the filesystem, and the
// paper's claim that Cyclops checkpoints are smaller than Pregel's because
// replicas and messages are never saved.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "cyclops/runtime/checkpoint.hpp"
#include "test_util.hpp"

namespace cyclops {
namespace {

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

/// Crash-at-superstep-k property: for any k, running k supersteps, saving,
/// "crashing", restoring into a brand-new engine and finishing must give the
/// exact result of the uninterrupted run.
class CrashRecovery : public ::testing::TestWithParam<Superstep> {};

TEST_P(CrashRecovery, BspPageRankSurvivesCrash) {
  const Superstep crash_at = GetParam();
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankBsp pr;
  pr.epsilon = 1e-11;
  bsp::Config cfg = bsp::Config::workers(4);
  cfg.max_supersteps = 200;

  bsp::Engine<algo::PageRankBsp> full(g, part, pr, cfg);
  (void)full.run();

  bsp::Config partial = cfg;
  partial.max_supersteps = crash_at;
  bsp::Engine<algo::PageRankBsp> victim(g, part, pr, partial);
  (void)victim.run();
  ByteWriter snapshot;
  victim.checkpoint(snapshot);
  // victim is destroyed here — the "crash".

  bsp::Engine<algo::PageRankBsp> recovered(g, part, pr, cfg);
  ByteReader reader(snapshot.bytes());
  recovered.restore(reader);
  (void)recovered.run();
  EXPECT_LT(max_abs_diff(recovered.values(), full.values()), 1e-13);
}

TEST_P(CrashRecovery, CyclopsPageRankSurvivesCrash) {
  const Superstep crash_at = GetParam();
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config cfg = core::Config::cyclops(4, 1);
  cfg.max_supersteps = 200;

  core::Engine<algo::PageRankCyclops> full(g, part, pr, cfg);
  (void)full.run();

  core::Config partial = cfg;
  partial.max_supersteps = crash_at;
  core::Engine<algo::PageRankCyclops> victim(g, part, pr, partial);
  (void)victim.run();
  ByteWriter snapshot;
  victim.checkpoint(snapshot);

  core::Engine<algo::PageRankCyclops> recovered(g, part, pr, cfg);
  ByteReader reader(snapshot.bytes());
  recovered.restore(reader);
  EXPECT_TRUE(recovered.replicas_consistent());  // replicas rebuilt on restore
  (void)recovered.run();
  EXPECT_LT(max_abs_diff(recovered.values(), full.values()), 1e-13);
}

TEST_P(CrashRecovery, CyclopsSsspSurvivesCrash) {
  const Superstep crash_at = GetParam();
  graph::gen::RoadSpec spec;
  spec.rows = 14;
  spec.cols = 14;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 3));
  const auto part = test::hash_partition(g, 3);
  algo::SsspCyclops sssp;
  sssp.source = 0;
  core::Config cfg = core::Config::cyclops(3, 1);
  cfg.max_supersteps = 400;

  core::Config partial = cfg;
  partial.max_supersteps = crash_at;
  core::Engine<algo::SsspCyclops> victim(g, part, sssp, partial);
  (void)victim.run();
  ByteWriter snapshot;
  victim.checkpoint(snapshot);

  core::Engine<algo::SsspCyclops> recovered(g, part, sssp, cfg);
  ByteReader reader(snapshot.bytes());
  recovered.restore(reader);
  (void)recovered.run();
  const auto reference = algo::sssp_reference(g, 0);
  const auto values = recovered.values();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(values[v], reference[v], 1e-9) << "vertex " << v;
  }
}

TEST_P(CrashRecovery, GasPageRankSurvivesCrash) {
  const Superstep crash_at = GetParam();
  const graph::EdgeList e = graph::gen::rmat(8, 1600, 2014);
  const graph::Csr g = graph::Csr::build(e);
  const auto part = partition::RandomVertexCut{}.partition(g, 4);
  algo::PageRankGas pr;
  pr.num_vertices = e.num_vertices();
  pr.epsilon = 1e-11;
  gas::Config cfg = gas::Config::workers(4);
  cfg.max_iterations = 200;

  gas::Engine<algo::PageRankGas> full(g, part, pr, cfg);
  (void)full.run();

  gas::Config partial = cfg;
  partial.max_iterations = crash_at;
  gas::Engine<algo::PageRankGas> victim(g, part, pr, partial);
  (void)victim.run();
  const Superstep saved_at = victim.superstep();
  ByteWriter snapshot;
  victim.checkpoint(snapshot);
  // victim is abandoned here — the "crash".

  gas::Engine<algo::PageRankGas> recovered(g, part, pr, cfg);
  ByteReader reader(snapshot.bytes());
  recovered.restore(reader);
  EXPECT_EQ(recovered.superstep(), saved_at);
  (void)recovered.run();
  const auto got = recovered.values();
  const auto want = full.values();
  ASSERT_EQ(got.size(), want.size());
  for (VertexId v = 0; v < got.size(); ++v) {
    EXPECT_EQ(got[v].rank, want[v].rank) << "vertex " << v;  // bit-identical replay
  }
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrashRecovery,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

TEST(Checkpoint, SurvivesFilesystemRoundTrip) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 5));
  const auto part = test::hash_partition(g, 3);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config cfg = core::Config::cyclops(3, 1);
  cfg.max_supersteps = 10;
  core::Engine<algo::PageRankCyclops> engine(g, part, pr, cfg);
  (void)engine.run();

  ByteWriter snapshot;
  engine.checkpoint(snapshot);
  const std::string path = ::testing::TempDir() + "/cyclops_ckpt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(snapshot.bytes().data()),
              static_cast<std::streamsize>(snapshot.size()));
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), snapshot.size());

  core::Config cfg_full = cfg;
  cfg_full.max_supersteps = 200;
  core::Engine<algo::PageRankCyclops> restored(g, part, pr, cfg_full);
  ByteReader reader(bytes);
  restored.restore(reader);
  EXPECT_EQ(restored.superstep(), 10u);
  (void)restored.run();
  EXPECT_LT(max_abs_diff(restored.values(), algo::pagerank_reference(g)), 1e-7);
  std::remove(path.c_str());
}

TEST(Checkpoint, CyclopsSnapshotsSmallerThanBspMidRun) {
  // §3.6: Cyclops "does not require to save the replicas and messages" — at
  // a mid-run barrier with messages in flight, the BSP snapshot must be
  // strictly larger than the Cyclops one for the same graph and progress.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 9000, 7));
  const auto part = test::hash_partition(g, 6);

  algo::PageRankBsp bsp_prog;
  bsp_prog.epsilon = 1e-11;
  bsp::Config bsp_cfg = bsp::Config::workers(6);
  bsp_cfg.max_supersteps = 5;  // mid-run: all vertices alive, wires full
  bsp::Engine<algo::PageRankBsp> bsp_engine(g, part, bsp_prog, bsp_cfg);
  (void)bsp_engine.run();
  ByteWriter bsp_snapshot;
  bsp_engine.checkpoint(bsp_snapshot);

  algo::PageRankCyclops cy_prog;
  cy_prog.epsilon = 1e-11;
  core::Config cy_cfg = core::Config::cyclops(6, 1);
  cy_cfg.max_supersteps = 5;
  core::Engine<algo::PageRankCyclops> cy_engine(g, part, cy_prog, cy_cfg);
  (void)cy_engine.run();
  ByteWriter cy_snapshot;
  cy_engine.checkpoint(cy_snapshot);

  EXPECT_LT(cy_snapshot.size(), bsp_snapshot.size());
}

TEST(Checkpoint, RestoreRejectsWrongGraph) {
  // A snapshot taken against another graph is a *recoverable* error: restore
  // throws SerializeError so recovery can fall back, instead of aborting.
  const graph::Csr g1 = graph::Csr::build(graph::gen::rmat(7, 600, 9));
  const graph::Csr g2 = graph::Csr::build(graph::gen::rmat(8, 1200, 9));
  algo::PageRankCyclops pr;
  core::Config cfg = core::Config::cyclops(2, 1);
  cfg.max_supersteps = 3;
  core::Engine<algo::PageRankCyclops> a(g1, test::hash_partition(g1, 2), pr, cfg);
  (void)a.run();
  ByteWriter snapshot;
  a.checkpoint(snapshot);

  core::Engine<algo::PageRankCyclops> b(g2, test::hash_partition(g2, 2), pr, cfg);
  ByteReader reader(snapshot.bytes());
  EXPECT_THROW(b.restore(reader), SerializeError);
}

TEST(Checkpoint, RestoreRejectsWrongEngine) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(7, 600, 9));
  const auto part = test::hash_partition(g, 2);
  algo::PageRankBsp bsp_pr;
  bsp::Config bsp_cfg = bsp::Config::workers(2);
  bsp_cfg.max_supersteps = 3;
  bsp::Engine<algo::PageRankBsp> a(g, part, bsp_pr, bsp_cfg);
  (void)a.run();
  ByteWriter snapshot;
  a.checkpoint(snapshot);

  algo::PageRankCyclops cy_pr;
  core::Config cy_cfg = core::Config::cyclops(2, 1);
  core::Engine<algo::PageRankCyclops> b(g, part, cy_pr, cy_cfg);
  ByteReader reader(snapshot.bytes());
  EXPECT_THROW(b.restore(reader), SerializeError);
}

TEST(Checkpoint, TruncatedSnapshotIsRecoverable) {
  // Satellite: a truncated byte stream must throw SerializeError from the
  // ByteReader path (never CYCLOPS_CHECK-abort), at *every* cut point.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(7, 500, 21));
  const auto part = test::hash_partition(g, 2);
  algo::PageRankCyclops pr;
  core::Config cfg = core::Config::cyclops(2, 1);
  cfg.max_supersteps = 4;
  core::Engine<algo::PageRankCyclops> engine(g, part, pr, cfg);
  (void)engine.run();
  ByteWriter snapshot;
  engine.checkpoint(snapshot);

  const auto& bytes = snapshot.bytes();
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, bytes.size() / 4,
                          bytes.size() / 2, bytes.size() - 1}) {
    core::Engine<algo::PageRankCyclops> fresh(g, part, pr, cfg);
    ByteReader reader(std::span<const std::uint8_t>(bytes.data(), cut));
    EXPECT_THROW(fresh.restore(reader), SerializeError) << "cut at " << cut;
  }
}

TEST(Checkpoint, SealedFrameDetectsBitFlips) {
  // Satellite: bit flips at rest are caught by the snapshot frame's CRC and
  // surface as SerializeError through open_snapshot.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(7, 500, 22));
  const auto part = test::hash_partition(g, 2);
  algo::PageRankCyclops pr;
  core::Config cfg = core::Config::cyclops(2, 1);
  cfg.max_supersteps = 4;
  core::Engine<algo::PageRankCyclops> engine(g, part, pr, cfg);
  (void)engine.run();
  ByteWriter snapshot;
  engine.checkpoint(snapshot);

  const std::vector<std::uint8_t> sealed = runtime::seal_snapshot(snapshot.bytes());
  EXPECT_EQ(runtime::open_snapshot(sealed), snapshot.bytes());  // clean round trip

  for (std::size_t i : {std::size_t{16}, sealed.size() / 2, sealed.size() - 1}) {
    std::vector<std::uint8_t> flipped = sealed;
    flipped[i] ^= 0x10;
    EXPECT_THROW((void)runtime::open_snapshot(flipped), SerializeError)
        << "flip at " << i;
  }
  // Truncated frames are equally recoverable.
  std::vector<std::uint8_t> cut(sealed.begin(), sealed.begin() + sealed.size() / 2);
  EXPECT_THROW((void)runtime::open_snapshot(cut), SerializeError);
}

TEST(Checkpoint, HeavyweightModesRoundTrip) {
  // Heavyweight snapshots (full replica/mirror state) restore as exactly as
  // lightweight ones; §3.6's point is only that they are *bigger*.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 31));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config cfg = core::Config::cyclops(4, 1);
  cfg.max_supersteps = 200;
  core::Engine<algo::PageRankCyclops> full(g, part, pr, cfg);
  (void)full.run();

  core::Config partial = cfg;
  partial.max_supersteps = 6;
  core::Engine<algo::PageRankCyclops> victim(g, part, pr, partial);
  (void)victim.run();
  ByteWriter light, heavy;
  victim.checkpoint(light, runtime::CheckpointMode::kLightweight);
  victim.checkpoint(heavy, runtime::CheckpointMode::kHeavyweight);
  EXPECT_LT(light.size(), heavy.size());

  core::Engine<algo::PageRankCyclops> recovered(g, part, pr, cfg);
  ByteReader reader(heavy.bytes());
  recovered.restore(reader);
  EXPECT_TRUE(recovered.replicas_consistent());
  (void)recovered.run();
  EXPECT_LT(max_abs_diff(recovered.values(), full.values()), 1e-13);
}

}  // namespace
}  // namespace cyclops
