// Soak test for the service layer (ctest label: slow). Hammers the scheduler
// with a sustained mixed workload across tenants while topology deltas commit
// concurrently, then checks the system drained clean: every admitted job
// reached "ok", counters balance, and all retired epochs actually released
// their storage. Excluded from the sanitizer CI jobs (-LE slow); the default
// job runs it under the normal test timeout.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cyclops/core/mutation.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/service/service.hpp"

namespace cyclops::service {
namespace {

TEST(ServiceSoak, MixedWorkloadWithConcurrentMutations) {
  constexpr int kWaves = 12;
  constexpr int kJobsPerWave = 8;

  ServiceConfig cfg;
  cfg.snapshot.machines = 2;
  cfg.snapshot.workers_per_machine = 2;
  cfg.scheduler.workers = 4;
  cfg.scheduler.max_queue = kWaves * kJobsPerWave;
  cfg.scheduler.per_tenant_running = 2;
  Service svc(graph::gen::rmat(8, 1400, 99), cfg);

  const Algo algos[] = {Algo::kPageRank, Algo::kSssp, Algo::kCc};
  const EngineSel engines[] = {EngineSel::kHama, EngineSel::kCyclops,
                               EngineSel::kCyclopsMT, EngineSel::kGas};
  std::vector<std::uint64_t> ids;
  std::uint64_t skipped = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    for (int i = 0; i < kJobsPerWave; ++i) {
      JobSpec spec;
      spec.algo = algos[(wave + i) % std::size(algos)];
      spec.engine = engines[i % std::size(engines)];
      spec.tenant = "tenant-" + std::to_string(i % 4);
      spec.max_supersteps = 25;
      const auto sub = svc.submit(spec);
      if (!sub.accepted) {
        // Only the gas/cc combination is invalid in this mix.
        EXPECT_NE(sub.reason.find("gas engine"), std::string::npos) << sub.reason;
        ++skipped;
        continue;
      }
      ids.push_back(sub.id);
    }
    // Every wave rewires a couple of edges: a new epoch publishes while the
    // previous wave's jobs are still running against older ones.
    core::TopologyDelta delta;
    delta.add_edge(static_cast<VertexId>(wave * 2), static_cast<VertexId>(200 + wave));
    delta.remove_edge(static_cast<VertexId>(wave), static_cast<VertexId>(wave + 1));
    svc.apply_delta(delta);
  }
  svc.wait_all();

  for (const auto id : ids) {
    EXPECT_EQ(svc.scheduler().stats_for(id).outcome, "ok") << "job " << id;
  }
  const auto counters = svc.scheduler().counters();
  EXPECT_EQ(counters.accepted, ids.size());
  EXPECT_EQ(counters.completed, ids.size());
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.rejected, skipped);

  const auto snap = svc.snapshots().stats();
  EXPECT_EQ(snap.epochs_published, static_cast<std::uint64_t>(kWaves) + 1);
  // Drained: only the store's current snapshot still holds storage.
  EXPECT_EQ(svc.snapshots().live_snapshots(), 1u);
  EXPECT_EQ(svc.snapshots().current_epoch(), static_cast<Epoch>(kWaves));
}

}  // namespace
}  // namespace cyclops::service
