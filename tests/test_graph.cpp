// Unit tests for the graph substrate: edge lists, CSR construction, text
// loading/saving, structural statistics.

#include <gtest/gtest.h>

#include <sstream>

#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/edge_list.hpp"
#include "cyclops/graph/gstats.hpp"
#include "cyclops/graph/loader.hpp"
#include "test_util.hpp"

namespace cyclops::graph {
namespace {

TEST(EdgeList, AddGrowsVertexBound) {
  EdgeList e;
  e.add(3, 7);
  EXPECT_EQ(e.num_vertices(), 8u);
  EXPECT_EQ(e.num_edges(), 1u);
}

TEST(EdgeList, AddUndirectedMirrors) {
  EdgeList e;
  e.add_undirected(0, 1, 2.5);
  ASSERT_EQ(e.num_edges(), 2u);
  EXPECT_EQ(e.edges()[0], (Edge{0, 1, 2.5}));
  EXPECT_EQ(e.edges()[1], (Edge{1, 0, 2.5}));
}

TEST(EdgeList, SelfLoopNotMirrored) {
  EdgeList e;
  e.add_undirected(2, 2);
  EXPECT_EQ(e.num_edges(), 1u);
}

TEST(EdgeList, SortAndDedup) {
  EdgeList e;
  e.add(1, 0);
  e.add(0, 1);
  e.add(1, 0, 9.0);
  e.sort_and_dedup();
  ASSERT_EQ(e.num_edges(), 2u);
  EXPECT_EQ(e.edges()[0].src, 0u);
  EXPECT_EQ(e.edges()[1].src, 1u);
}

TEST(Csr, BuildDegreesAndAdjacency) {
  const Csr g = Csr::build(test::figure6_graph());
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 3u);  // from 0, 2, 3
  EXPECT_EQ(g.out_degree(4), 2u);
  // Adjacency sorted by neighbor id.
  const auto n2 = g.out_neighbors(2);
  ASSERT_EQ(n2.size(), 2u);
  EXPECT_EQ(n2[0].neighbor, 1u);
  EXPECT_EQ(n2[1].neighbor, 3u);
}

TEST(Csr, InOutAreTransposes) {
  const Csr g = Csr::build(test::figure6_graph());
  std::size_t in_total = 0, out_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    in_total += g.in_degree(v);
    out_total += g.out_degree(v);
    for (const Adj& a : g.out_neighbors(v)) {
      bool found = false;
      for (const Adj& b : g.in_neighbors(a.neighbor)) found |= b.neighbor == v;
      EXPECT_TRUE(found) << v << "->" << a.neighbor;
    }
  }
  EXPECT_EQ(in_total, out_total);
}

TEST(Csr, PreservesWeights) {
  const Csr g = Csr::build(test::diamond_graph());
  const auto n0 = g.out_neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_DOUBLE_EQ(n0[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(n0[1].weight, 4.0);
}

TEST(Csr, EmptyGraph) {
  const Csr g = Csr::build(EdgeList{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Csr, KeepsParallelEdges) {
  EdgeList e(2);
  e.add(0, 1);
  e.add(0, 1);
  const Csr g = Csr::build(e);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 2u);
}

TEST(Loader, ParsesCommentsAndWeights) {
  std::istringstream in("# header\n0 1\n1 2 3.5\n% another comment\n2 0\n");
  const EdgeList e = load_edge_list(in);
  EXPECT_EQ(e.num_vertices(), 3u);
  ASSERT_EQ(e.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(e.edges()[1].weight, 3.5);
}

TEST(Loader, DensifiesSparseIds) {
  std::istringstream in("1000000 2000000\n2000000 1000000\n");
  const EdgeList e = load_edge_list(in);
  EXPECT_EQ(e.num_vertices(), 2u);
  EXPECT_EQ(e.edges()[0].src, 0u);
  EXPECT_EQ(e.edges()[0].dst, 1u);
}

TEST(Loader, UndirectedOptionMirrors) {
  std::istringstream in("0 1\n");
  LoadOptions opts;
  opts.undirected = true;
  const EdgeList e = load_edge_list(in, opts);
  EXPECT_EQ(e.num_edges(), 2u);
}

TEST(Loader, ThrowsOnMalformedLine) {
  std::istringstream in("0 notanumber\n");
  EXPECT_THROW((void)load_edge_list(in), std::runtime_error);
}

TEST(Loader, ThrowsOnMissingFile) {
  EXPECT_THROW((void)load_edge_list_file("/nonexistent/graph.txt"), std::runtime_error);
}

TEST(Loader, SaveLoadRoundTrip) {
  EdgeList e(3);
  e.add(0, 1, 2.0);
  e.add(1, 2, 0.5);
  std::ostringstream out;
  save_edge_list(out, e);
  std::istringstream in(out.str());
  const EdgeList back = load_edge_list(in);
  ASSERT_EQ(back.num_edges(), 2u);
  EXPECT_EQ(back.edges()[0], e.edges()[0]);
  EXPECT_EQ(back.edges()[1], e.edges()[1]);
}

TEST(GStats, ComputesDegreeSummary) {
  const Csr g = Csr::build(test::figure6_graph());
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.num_vertices, 6u);
  EXPECT_EQ(s.num_edges, 10u);
  EXPECT_EQ(s.isolated_vertices, 0u);
  EXPECT_NEAR(s.avg_degree, 10.0 / 6.0, 1e-12);
}

TEST(GStats, ReachabilityBfs) {
  const Csr g = Csr::build(test::diamond_graph());
  EXPECT_EQ(reachable_from(g, 0), 4u);
  EXPECT_EQ(reachable_from(g, 3), 1u);  // sink
}

}  // namespace
}  // namespace cyclops::graph
