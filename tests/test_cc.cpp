// Tests for Connected Components: the union-find reference, both engine
// programs, and cross-engine agreement on assorted undirected graphs.

#include <gtest/gtest.h>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/cc.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "test_util.hpp"

namespace cyclops::algo {
namespace {

graph::EdgeList two_cliques_and_isolated() {
  graph::EdgeList e(9);  // cliques {0..3}, {4..7}; vertex 8 isolated
  for (VertexId v = 0; v < 4; ++v) {
    for (VertexId u = v + 1; u < 4; ++u) e.add_undirected(v, u);
  }
  for (VertexId v = 4; v < 8; ++v) {
    for (VertexId u = v + 1; u < 8; ++u) e.add_undirected(v, u);
  }
  return e;
}

TEST(CcReference, LabelsComponentsByMinId) {
  const graph::Csr g = graph::Csr::build(two_cliques_and_isolated());
  const auto labels = cc_reference(g);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(labels[v], 0u);
  for (VertexId v = 4; v < 8; ++v) EXPECT_EQ(labels[v], 4u);
  EXPECT_EQ(labels[8], 8u);
  EXPECT_EQ(count_components(labels), 3u);
}

TEST(CcReference, SingleChain) {
  graph::EdgeList e(5);
  for (VertexId v = 0; v + 1 < 5; ++v) e.add_undirected(v, v + 1);
  const auto labels = cc_reference(graph::Csr::build(e));
  EXPECT_EQ(count_components(labels), 1u);
  for (auto l : labels) EXPECT_EQ(l, 0u);
}

TEST(CcBsp, MatchesReference) {
  const graph::Csr g = graph::Csr::build(two_cliques_and_isolated());
  CcBsp prog;
  bsp::Config cfg = bsp::Config::workers(3);
  cfg.max_supersteps = 50;
  bsp::Engine<CcBsp> engine(g, test::hash_partition(g, 3), prog, cfg);
  (void)engine.run();
  const auto reference = cc_reference(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(engine.values()[v], reference[v]) << v;
  }
}

TEST(CcCyclops, MatchesReference) {
  const graph::Csr g = graph::Csr::build(two_cliques_and_isolated());
  CcCyclops prog;
  core::Config cfg = core::Config::cyclops(3, 1);
  cfg.max_supersteps = 50;
  core::Engine<CcCyclops> engine(g, test::hash_partition(g, 3), prog, cfg);
  (void)engine.run();
  const auto reference = cc_reference(g);
  const auto values = engine.values();
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(values[v], reference[v]) << v;
}

TEST(CcCyclops, ActiveSetCollapsesAfterLabelsSettle) {
  graph::gen::RoadSpec spec;
  spec.rows = 12;
  spec.cols = 12;
  spec.shortcut_fraction = 0.0;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 3));
  CcCyclops prog;
  core::Config cfg = core::Config::cyclops(4, 1);
  cfg.max_supersteps = 100;
  core::Engine<CcCyclops> engine(g, test::hash_partition(g, 4), prog, cfg);
  const auto stats = engine.run();
  // Min-label propagation across a 12x12 grid: label 0 sweeps diagonally, so
  // the frontier (active set) shrinks well below |V| after the start.
  ASSERT_GT(stats.supersteps.size(), 5u);
  EXPECT_LT(stats.supersteps[stats.supersteps.size() - 2].active_vertices,
            g.num_vertices() / 2);
  // The final superstep only recomputes the trailing frontier.
  EXPECT_LT(stats.supersteps.back().active_vertices, 12u);
}

struct CcCase {
  unsigned kind;
  WorkerId workers;
  std::uint64_t seed;
};

class CcEngines : public ::testing::TestWithParam<CcCase> {};

TEST_P(CcEngines, BspAndCyclopsMatchUnionFind) {
  const auto [kind, workers, seed] = GetParam();
  graph::EdgeList edges;
  switch (kind) {
    case 0: {
      // Sparse ER stored undirected: many components.
      graph::EdgeList base = graph::gen::erdos_renyi(400, 250, seed);
      edges = graph::EdgeList(400);
      for (const graph::Edge& e : base.edges()) edges.add_undirected(e.src, e.dst);
      break;
    }
    case 1: {
      graph::gen::CommunitySpec spec{5, 30, 4, 0.98};
      edges = graph::gen::planted_communities(spec, seed);
      break;
    }
    default:
      edges = graph::gen::preferential_attachment(300, 2, seed);
      break;
  }
  const graph::Csr g = graph::Csr::build(edges);
  const auto reference = cc_reference(g);
  const auto part = test::hash_partition(g, workers);

  CcBsp bsp_prog;
  bsp::Config bsp_cfg = bsp::Config::workers(workers);
  bsp_cfg.max_supersteps = 300;
  bsp::Engine<CcBsp> bsp_engine(g, part, bsp_prog, bsp_cfg);
  (void)bsp_engine.run();

  CcCyclops cy_prog;
  core::Config cy_cfg = core::Config::cyclops(workers, 1);
  cy_cfg.max_supersteps = 300;
  core::Engine<CcCyclops> cy_engine(g, part, cy_prog, cy_cfg);
  (void)cy_engine.run();

  const auto cy_values = cy_engine.values();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(bsp_engine.values()[v], reference[v]) << "bsp vertex " << v;
    EXPECT_EQ(cy_values[v], reference[v]) << "cyclops vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CcEngines,
                         ::testing::Values(CcCase{0, 2, 1}, CcCase{0, 5, 2},
                                           CcCase{1, 3, 3}, CcCase{1, 6, 4},
                                           CcCase{2, 4, 5}, CcCase{2, 8, 6}));

}  // namespace
}  // namespace cyclops::algo
