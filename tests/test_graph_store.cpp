// GraphStore backend tests: the CompactCsr binary format (golden round-trip,
// varint/delta edge cases, CRC/truncation corruption), the StreamStore's
// paged adjacency, and the loader's recoverable-error contract. The shared
// invariant throughout: every backend presents adjacency bit-identical to
// the Csr it was built from, in the same canonical enumeration order.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cyclops/graph/compact_csr.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/edge_list.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/graph/loader.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/graph/stream_store.hpp"

namespace cyclops::graph {
namespace {

/// Adjacency (both directions), degrees, and counts must match the reference
/// Csr exactly — this is the cross-backend bit-identity contract.
void expect_same_graph(const Csr& want, const GraphStore& got) {
  ASSERT_EQ(want.num_vertices(), got.num_vertices());
  ASSERT_EQ(want.num_edges(), got.num_edges());
  AdjCursor cur;
  for (VertexId v = 0; v < want.num_vertices(); ++v) {
    ASSERT_EQ(want.out_degree(v), got.out_degree(v)) << "out_degree v=" << v;
    ASSERT_EQ(want.in_degree(v), got.in_degree(v)) << "in_degree v=" << v;
    const auto wo = want.out_neighbors(v);
    const auto go = got.out_neighbors(v, cur);
    ASSERT_EQ(std::vector<Adj>(wo.begin(), wo.end()),
              std::vector<Adj>(go.begin(), go.end()))
        << "out adjacency v=" << v;
    const auto wi = want.in_neighbors(v);
    const auto gi = got.in_neighbors(v, cur);
    ASSERT_EQ(std::vector<Adj>(wi.begin(), wi.end()),
              std::vector<Adj>(gi.begin(), gi.end()))
        << "in adjacency v=" << v;
  }
}

/// Canonical enumeration order must also agree edge-for-edge (the partition
/// layer indexes edges by this order).
void expect_same_enumeration(const GraphStore& a, const GraphStore& b) {
  struct E {
    VertexId s, d;
    double w;
    bool operator==(const E&) const = default;
  };
  std::vector<E> ea, eb;
  a.for_each_edge([&](VertexId s, VertexId d, double w) { ea.push_back({s, d, w}); });
  b.for_each_edge([&](VertexId s, VertexId d, double w) { eb.push_back({s, d, w}); });
  EXPECT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size() && i < eb.size(); ++i) {
    ASSERT_EQ(ea[i], eb[i]) << "edge " << i;
  }
}

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------- CompactCsr

TEST(CompactCsr, MatchesCsrOnRmat) {
  const Csr g = Csr::build(gen::rmat(10, 6000, 42));
  const CompactCsr c = CompactCsr::build(g);
  expect_same_graph(g, c);
  expect_same_enumeration(g, c);
}

TEST(CompactCsr, CompressesWeightlessAdjacency) {
  const Csr g = Csr::build(gen::rmat(10, 8000, 7));
  const CompactCsr c = CompactCsr::build(g);
  // Raw adjacency is 16 B/entry/direction; delta-varint should beat that by
  // a wide margin on a weightless power-law graph.
  EXPECT_LT(c.blob_bytes(), 2 * g.num_edges() * sizeof(Adj) / 4);
}

TEST(CompactCsr, ZeroDegreeVertices) {
  EdgeList e(8);  // vertices 4..7 fully isolated, 3 has only in-edges
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 3);
  const Csr g = Csr::build(e);
  const CompactCsr c = CompactCsr::build(g);
  expect_same_graph(g, c);
  AdjCursor cur;
  EXPECT_TRUE(c.out_neighbors(7, cur).empty());
  EXPECT_TRUE(c.in_neighbors(7, cur).empty());
}

TEST(CompactCsr, MaxIdDeltas) {
  // First-neighbor delta of ~n and a same-list jump of ~n both need
  // multi-byte varints with continuation bits; keep n big enough for that
  // but small enough that the O(n) index arrays stay test-sized.
  const VertexId n = (1u << 20) + 3;
  EdgeList e(n);
  e.add(0, n - 1);
  e.add(0, 1);
  e.add(n - 1, 0);
  e.add(n - 2, n - 1);
  const Csr g = Csr::build(e);
  const CompactCsr c = CompactCsr::build(g);
  expect_same_graph(g, c);
}

TEST(CompactCsr, MultiEdgesKeepOrderAndWeights) {
  EdgeList e(3);  // parallel edges: delta 0 between successive neighbors
  e.add(0, 1, 2.5);
  e.add(0, 1, 3.5);
  e.add(0, 1, 2.5);
  e.add(0, 2, 1.0);
  e.add(1, 2, -4.0);
  const Csr g = Csr::build(e);
  const CompactCsr c = CompactCsr::build(g);
  expect_same_graph(g, c);
}

TEST(CompactCsr, GoldenRoundTrip) {
  const Csr g = Csr::build(gen::erdos_renyi(500, 3000, 99));
  const CompactCsr built = CompactCsr::build(g);
  const std::string path = temp_path("roundtrip.cycs");
  built.save(path);
  const CompactCsr loaded = CompactCsr::load(path);
  expect_same_graph(g, loaded);
  expect_same_enumeration(g, loaded);
  // A mapped store charges the blob to disk, not RAM.
  if (loaded.mapped()) {
    EXPECT_GT(loaded.memory().on_disk_bytes, 0u);
    EXPECT_LT(loaded.memory().resident_bytes, built.memory().resident_bytes);
  }
  std::remove(path.c_str());
}

TEST(CompactCsr, WeightedRoundTrip) {
  EdgeList e(4);
  e.add(0, 1, 0.125);
  e.add(1, 2, 7.75);
  e.add(2, 3, -1.5);
  e.add(3, 0, 1e300);
  const Csr g = Csr::build(e);
  const std::string path = temp_path("weighted.cycs");
  CompactCsr::build(g).save(path);
  expect_same_graph(g, CompactCsr::load(path));
  std::remove(path.c_str());
}

TEST(CompactCsr, LoadRejectsBadMagic) {
  const Csr g = Csr::build(gen::erdos_renyi(50, 200, 1));
  const std::string path = temp_path("badmagic.cycs");
  CompactCsr::build(g).save(path);
  auto bytes = slurp(path);
  bytes[0] ^= 0x5a;
  spit(path, bytes);
  try {
    (void)CompactCsr::load(path);
    FAIL() << "load accepted corrupt magic";
  } catch (const LoadError& err) {
    EXPECT_EQ(err.byte_offset(), 0u);
  }
  std::remove(path.c_str());
}

TEST(CompactCsr, LoadDetectsPayloadCorruption) {
  const Csr g = Csr::build(gen::rmat(9, 3000, 5));
  const std::string path = temp_path("corrupt.cycs");
  CompactCsr::build(g).save(path);
  auto bytes = slurp(path);
  ASSERT_GT(bytes.size(), 256u);
  bytes[bytes.size() / 2] ^= 0xff;  // lands in some section's payload
  spit(path, bytes);
  try {
    (void)CompactCsr::load(path);
    FAIL() << "load accepted a flipped payload byte";
  } catch (const LoadError& err) {
    EXPECT_GT(err.byte_offset(), 0u);  // CRC failure names the section start
    EXPECT_LT(err.byte_offset(), bytes.size());
  }
  std::remove(path.c_str());
}

TEST(CompactCsr, LoadDetectsTruncation) {
  const Csr g = Csr::build(gen::rmat(9, 3000, 6));
  const std::string path = temp_path("trunc.cycs");
  CompactCsr::build(g).save(path);
  auto bytes = slurp(path);
  // Every proper prefix must be rejected with a recoverable error, never a
  // crash. Probe a spread of cut points including a mid-header one.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, bytes.size() / 4, std::size_t{17}}) {
    spit(path, std::vector<char>(bytes.begin(), bytes.begin() + keep));
    EXPECT_THROW((void)CompactCsr::load(path), LoadError) << "kept " << keep;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- StreamStore

StoreOptions stream_opts(std::uint64_t cap_bytes) {
  StoreOptions o;
  o.kind = StoreKind::kStream;
  o.mem_cap_bytes = cap_bytes;
  return o;
}

TEST(StreamStore, MatchesCsrUnderTinyWindows) {
  const Csr g = Csr::build(gen::rmat(10, 9000, 77));
  const StreamStore s(g, stream_opts(1 << 20));
  expect_same_graph(g, s);
  expect_same_enumeration(g, s);
}

TEST(StreamStore, ResidentFootprintExcludesAdjacency) {
  const Csr g = Csr::build(gen::rmat(11, 30000, 3));
  const StreamStore s(g, stream_opts(4 << 20));
  const StoreMemory m = s.memory();
  EXPECT_GT(m.on_disk_bytes, 0u);
  // The point of streaming: resident state is the O(|V|) index, strictly
  // smaller than the full in-memory CSR.
  EXPECT_LT(m.resident_bytes, g.memory().resident_bytes);
  EXPECT_EQ(m.on_disk_bytes, s.file_bytes());
}

TEST(StreamStore, CursorCountsWindowIo) {
  const Csr g = Csr::build(gen::rmat(9, 4000, 21));
  const StreamStore s(g, stream_opts(1 << 20));
  AdjCursor cur;
  for (VertexId v = 0; v < g.num_vertices(); ++v) (void)s.out_neighbors(v, cur);
  EXPECT_GT(cur.window_loads, 0u);
  EXPECT_GT(cur.bytes_read, 0u);
  // Ascending scans reuse windows: far fewer loads than queries.
  EXPECT_LT(cur.window_loads, g.num_vertices());
}

TEST(StreamStore, ExportsMessageBudget) {
  const Csr g = Csr::build(gen::erdos_renyi(100, 400, 8));
  const StreamStore s(g, stream_opts(8 << 20));
  EXPECT_EQ(s.message_budget_bytes(), (8u << 20) / 2);
  EXPECT_EQ(g.message_budget_bytes(), 0u) << "in-memory stores are unbounded";
}

// ---------------------------------------------------------------- make_store

TEST(MakeStore, AllKindsPresentIdenticalAdjacency) {
  const EdgeList e = gen::rmat(9, 2500, 123);
  const Csr want = Csr::build(e);
  for (const StoreKind kind : {StoreKind::kMemory, StoreKind::kCompact, StoreKind::kStream}) {
    StoreOptions o;
    o.kind = kind;
    o.mem_cap_bytes = 1 << 20;
    const auto store = make_store(e, o);
    ASSERT_EQ(store->kind(), kind);
    expect_same_graph(want, *store);
  }
}

TEST(MakeStore, ParseKindRejectsUnknown) {
  EXPECT_EQ(parse_store_kind("memory"), StoreKind::kMemory);
  EXPECT_EQ(parse_store_kind("compact"), StoreKind::kCompact);
  EXPECT_EQ(parse_store_kind("stream"), StoreKind::kStream);
  EXPECT_THROW((void)parse_store_kind("mmap"), std::runtime_error);
}

// ---------------------------------------------------------------- loader

TEST(Loader, MalformedLineReportsOffsetAndLine) {
  std::istringstream in("0 1\n2 not-a-vertex\n");
  try {
    (void)load_edge_list(in);
    FAIL() << "parser accepted garbage";
  } catch (const LoadError& err) {
    EXPECT_EQ(err.line(), 2u);
    EXPECT_GE(err.byte_offset(), 4u);  // past the first line
    EXPECT_NE(std::string(err.what()).find("line 2"), std::string::npos);
  }
}

TEST(Loader, TruncatedBinaryReportsOffset) {
  EdgeList e(10);
  for (VertexId v = 0; v + 1 < 10; ++v) e.add(v, v + 1, 0.5 * v);
  const std::string path = temp_path("trunc.cygr");
  save_binary_file(path, e);
  auto bytes = slurp(path);
  spit(path, std::vector<char>(bytes.begin(), bytes.end() - 7));
  try {
    (void)load_binary_file(path);
    FAIL() << "loader accepted a truncated record";
  } catch (const LoadError& err) {
    EXPECT_GT(err.byte_offset(), 0u);
    EXPECT_EQ(err.line(), 0u) << "binary errors carry no line number";
  }
  std::remove(path.c_str());
}

TEST(Loader, BinaryMagicMismatchReportsOffsetZero) {
  EdgeList e(2);
  e.add(0, 1);
  const std::string path = temp_path("badmagic.cygr");
  save_binary_file(path, e);
  auto bytes = slurp(path);
  bytes[1] ^= 0x40;
  spit(path, bytes);
  try {
    (void)load_binary_file(path);
    FAIL() << "loader accepted a bad magic";
  } catch (const LoadError& err) {
    EXPECT_EQ(err.byte_offset(), 0u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cyclops::graph
