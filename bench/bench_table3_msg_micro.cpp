// Table 3 — the message-passing micro-benchmark (§6.11): five workers
// concurrently send (index, value) messages that update an array owned by a
// master worker, via three implementations:
//   * Hama:       per-message serialization, every record enqueued into one
//                 global queue under a lock, then a separate parse phase;
//   * PowerGraph: bundled serialization with batched enqueue into the global
//                 queue, then the same parse phase (the faster C++ RPC);
//   * Cyclops:    bundled serialization and *direct* lock-free updates — each
//                 array slot has exactly one writer, so no queue, no lock, no
//                 parse phase.
// Paper result (5M msgs): Hama 10.1s, PowerGraph 0.8s, Cyclops 1.0s total —
// one order of magnitude between the locked-queue+parse path and the rest.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "cyclops/common/serialize.hpp"
#include "cyclops/common/spinlock.hpp"

namespace {

using cyclops::ByteReader;
using cyclops::ByteWriter;
using cyclops::SpinLock;

constexpr int kSenders = 5;
constexpr std::size_t kArraySize = 1 << 16;

struct Record {
  std::uint32_t index;
  double value;
};

/// Hama path: one ByteWriter round-trip and one lock acquisition per message.
double run_hama(std::size_t messages, std::vector<double>& array) {
  std::vector<Record> queue;
  queue.reserve(messages);
  SpinLock lock;
  std::vector<std::thread> senders;
  const std::size_t per_sender = messages / kSenders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      ByteWriter writer;
      for (std::size_t i = 0; i < per_sender; ++i) {
        const Record rec{static_cast<std::uint32_t>((s * per_sender + i) % kArraySize),
                         static_cast<double>(i)};
        writer.clear();
        writer.write(rec);  // per-message serialization (Hadoop RPC style)
        ByteReader reader(writer.bytes());
        const Record parsed = reader.read<Record>();
        lock.lock();
        queue.push_back(parsed);
        lock.unlock();
      }
    });
  }
  for (auto& t : senders) t.join();
  // Parse phase: drain the global queue into the array.
  for (const Record& rec : queue) array[rec.index] = rec.value;
  return static_cast<double>(queue.size());
}

/// PowerGraph path: bundle serialization, lock per 512-record batch.
double run_powergraph(std::size_t messages, std::vector<double>& array) {
  std::vector<Record> queue;
  queue.reserve(messages);
  SpinLock lock;
  std::vector<std::thread> senders;
  const std::size_t per_sender = messages / kSenders;
  constexpr std::size_t kBatch = 512;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      ByteWriter writer;
      std::size_t in_batch = 0;
      auto flush = [&] {
        if (writer.size() == 0) return;
        ByteReader reader(writer.bytes());
        lock.lock();
        while (!reader.exhausted()) queue.push_back(reader.read<Record>());
        lock.unlock();
        writer.clear();
        in_batch = 0;
      };
      for (std::size_t i = 0; i < per_sender; ++i) {
        writer.write(Record{static_cast<std::uint32_t>((s * per_sender + i) % kArraySize),
                            static_cast<double>(i)});
        if (++in_batch == kBatch) flush();
      }
      flush();
    });
  }
  for (auto& t : senders) t.join();
  for (const Record& rec : queue) array[rec.index] = rec.value;
  return static_cast<double>(queue.size());
}

/// Cyclops path: bundled serialization, direct in-place updates, no locks —
/// each index is written by exactly one sender (disjoint slot ranges), like
/// replica slots with a single master writer.
double run_cyclops(std::size_t messages, std::vector<double>& array) {
  std::vector<std::thread> senders;
  const std::size_t per_sender = messages / kSenders;
  constexpr std::size_t kBatch = 512;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      ByteWriter writer;
      std::size_t in_batch = 0;
      auto flush = [&] {
        if (writer.size() == 0) return;
        ByteReader reader(writer.bytes());
        while (!reader.exhausted()) {
          const Record rec = reader.read<Record>();
          array[rec.index] = rec.value;  // lock-free: single writer per slot
        }
        writer.clear();
        in_batch = 0;
      };
      for (std::size_t i = 0; i < per_sender; ++i) {
        writer.write(Record{static_cast<std::uint32_t>((s * per_sender + i) % kArraySize),
                            static_cast<double>(i)});
        if (++in_batch == kBatch) flush();
      }
      flush();
    });
  }
  for (auto& t : senders) t.join();
  return static_cast<double>(messages);
}

template <double (*Fn)(std::size_t, std::vector<double>&)>
void BM_Messaging(benchmark::State& state) {
  const auto messages = static_cast<std::size_t>(state.range(0));
  std::vector<double> array(kArraySize, 0.0);
  double processed = 0;
  for (auto _ : state) {
    processed += Fn(messages, array);
    benchmark::DoNotOptimize(array.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["msgs"] = static_cast<double>(messages);
}

}  // namespace

BENCHMARK(BM_Messaging<run_hama>)->Name("Table3/Hama")->Arg(100000)->Arg(500000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Messaging<run_powergraph>)->Name("Table3/PowerGraph")->Arg(100000)
    ->Arg(500000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Messaging<run_cyclops>)->Name("Table3/Cyclops")->Arg(100000)->Arg(500000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
