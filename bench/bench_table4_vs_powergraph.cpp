// Table 4 — CyclopsMT vs PowerGraph for PageRank on the four web/social
// graphs, under (a) hash-based partitioning (hash edge-cut for Cyclops,
// random vertex-cut for PowerGraph) and (b) heuristic partitioning
// (multilevel/Metis-like for Cyclops, coordinated-greedy for PowerGraph).
// Reports execution time, average replicas per vertex, total messages, and
// messages per replica per iteration — the paper's msg/rep column is the
// mechanism of the whole comparison (Cyclops <=1, PowerGraph ~5).

#include <cstdio>

#include "cyclops/graph/csr.hpp"
#include "cyclops/common/table.hpp"
#include "harness.hpp"

int main() {
  using namespace cyclops;
  using namespace cyclops::bench;

  const std::vector<algo::Dataset> web = {algo::make_amazon(), algo::make_gweb(),
                                          algo::make_ljournal(), algo::make_wiki()};

  // Paper Table 4 reference rows (hash partition): exec time Cyclops : PG,
  // avg replicas, #messages (M), msg/rep.
  const char* paper_hash[] = {
      "10.5 : 14.8 | 3.86 : 3.77 | 38 : 192 | 1.0 : 5.2",
      "11.4 : 15.2 | 2.44 : 2.57 | 38 : 212 | 1.0 : 5.3",
      "97.1 : 72.9 | 2.69 : 2.62 | 353 : 1873 | 1.0 : 5.4",
      "75.6 : 61.9 | 2.51 : 2.60 | 218 : 1366 | 1.0 : 6.2",
  };

  for (const bool heuristic : {false, true}) {
    Table t({"dataset", "Cyclops(s)", "PG(s)", "reps Cy", "reps PG", "msgs Cy",
             "msgs PG", "msg/rep Cy", "msg/rep PG"});
    for (std::size_t i = 0; i < web.size(); ++i) {
      const auto& d = web[i];
      const graph::Csr g = graph::Csr::build(d.edges);
      RunOptions opts;
      opts.workers = 48;
      opts.multilevel = heuristic;
      const CellResult cy = run_cell(d, g, EngineKind::kCyclopsMT, opts);
      const CellResult pg = run_cell(d, g, EngineKind::kPowerGraph, opts);

      // Messages per *mirror* per iteration — masters never receive sync
      // traffic, so the denominator excludes the master copy, matching the
      // paper's "Msg/Rep" column (Cyclops <= 1, PowerGraph ~5).
      auto msg_per_rep = [&](const CellResult& r) {
        const double mirrors = (r.replication_factor - 1.0) * g.num_vertices();
        const double steps = static_cast<double>(r.stats.supersteps.size());
        return mirrors > 0 && steps > 0
                   ? static_cast<double>(r.messages) / mirrors / steps
                   : 0.0;
      };
      t.add_row({d.name, Table::fmt(cy.total_s, 3), Table::fmt(pg.total_s, 3),
                 Table::fmt(cy.replication_factor, 2),
                 Table::fmt(pg.replication_factor, 2),
                 Table::fmt_int(static_cast<long long>(cy.messages)),
                 Table::fmt_int(static_cast<long long>(pg.messages)),
                 Table::fmt(msg_per_rep(cy), 2), Table::fmt(msg_per_rep(pg), 2)});
    }
    std::fputs(t.render(heuristic
                            ? "Table 4 (heuristic partition): CyclopsMT multilevel vs "
                              "PowerGraph coordinated-greedy"
                            : "Table 4 (hash partition): CyclopsMT vs PowerGraph")
                   .c_str(),
               stdout);
    if (!heuristic) {
      std::puts("Paper reference (hash): time Cy:PG | avg reps | msgs(M) | msg/rep");
      for (std::size_t i = 0; i < web.size(); ++i) {
        std::printf("  %-9s %s\n", web[i].name.c_str(), paper_hash[i]);
      }
    }
  }
  return 0;
}
