// Figure 12 — CyclopsMT configuration sweep for PageRank on the GWeb
// stand-in: MxWxT/R = machines x workers-per-machine x threads / receivers.
// Left group: plain Cyclops with more single-threaded workers per machine
// (6x1x1 .. 6x8x1). Middle: CyclopsMT with more compute threads (6x1x1 ..
// 6x1x8). Right: 6x1x8 with varying receiver counts (/1 ../8).

#include <cstdio>
#include <string>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/partition/hash.hpp"
#include "harness.hpp"

namespace {

using namespace cyclops;

struct ConfigResult {
  std::string label;
  double syn_s, cmp_s, snd_s, total_s;
  std::uint64_t replicas, messages;
};

ConfigResult run_config(const graph::Csr& g, MachineId machines, WorkerId wpm,
                        unsigned threads, unsigned receivers) {
  algo::PageRankCyclops prog;
  prog.epsilon = 1e-9;
  core::Config cfg;
  cfg.topo = sim::Topology{machines, wpm};
  cfg.compute_threads = threads;
  cfg.receiver_threads = receivers;
  cfg.hierarchical_barrier = threads > 1;
  cfg.max_supersteps = 30;
  const WorkerId parts = cfg.topo.total_workers();
  core::Engine<algo::PageRankCyclops> engine(
      g, partition::HashPartitioner{}.partition(g, parts), prog, cfg);
  const auto stats = engine.run();
  const auto phases = stats.phase_totals();
  ConfigResult r;
  char label[48];
  std::snprintf(label, sizeof(label), "%ux%ux%u/%u", machines, wpm, threads, receivers);
  r.label = label;
  r.syn_s = phases.syn_s + stats.modeled_barrier_s();
  r.cmp_s = phases.cmp_s;
  r.snd_s = phases.snd_s + stats.modeled_wire_s();
  r.total_s = stats.total_time_s();
  r.replicas = engine.layout().total_replicas;
  r.messages = stats.net_totals().total_messages();
  return r;
}

}  // namespace

int main() {
  using namespace cyclops;
  const algo::Dataset gweb = algo::make_gweb();
  const graph::Csr g = graph::Csr::build(gweb.edges);
  std::printf("Dataset: %s\n", gweb.describe().c_str());

  Table t({"config MxWxT/R", "SYN(s)", "CMP(s)", "SND(s)", "total(s)", "replicas",
           "messages"});
  // Left group: scaling workers (plain Cyclops).
  for (WorkerId w : {1u, 2u, 4u, 8u}) {
    const auto r = run_config(g, 6, w, 1, 1);
    t.add_row({r.label, Table::fmt(r.syn_s, 3), Table::fmt(r.cmp_s, 3),
               Table::fmt(r.snd_s, 3), Table::fmt(r.total_s, 3),
               Table::fmt_int(static_cast<long long>(r.replicas)),
               Table::fmt_int(static_cast<long long>(r.messages))});
  }
  // Middle group: scaling compute threads (CyclopsMT).
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const auto r = run_config(g, 6, 1, threads, 1);
    t.add_row({r.label, Table::fmt(r.syn_s, 3), Table::fmt(r.cmp_s, 3),
               Table::fmt(r.snd_s, 3), Table::fmt(r.total_s, 3),
               Table::fmt_int(static_cast<long long>(r.replicas)),
               Table::fmt_int(static_cast<long long>(r.messages))});
  }
  // Right group: scaling receivers at 8 compute threads.
  for (unsigned receivers : {1u, 2u, 4u, 8u}) {
    const auto r = run_config(g, 6, 1, 8, receivers);
    t.add_row({r.label, Table::fmt(r.syn_s, 3), Table::fmt(r.cmp_s, 3),
               Table::fmt(r.snd_s, 3), Table::fmt(r.total_s, 3),
               Table::fmt_int(static_cast<long long>(r.replicas)),
               Table::fmt_int(static_cast<long long>(r.messages))});
  }
  std::fputs(
      t.render("Figure 12: CyclopsMT configuration sweep, PageRank on GWeb "
               "(paper: more workers inflate replicas/messages; threads cut CMP "
               "with stable SND; best config 6x1x8/2)")
          .c_str(),
      stdout);
  return 0;
}
