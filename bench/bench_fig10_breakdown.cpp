// Figure 10 — (1) execution-time breakdown (SYN/PRS/CMP/SND) for all seven
// benchmarks on Hama, Cyclops and CyclopsMT with 48 workers; (2) active
// vertices per superstep and (3) messages per superstep for PageRank on the
// GWeb stand-in, Hama vs Cyclops.

#include <cstdio>

#include "cyclops/graph/csr.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/metrics/reporter.hpp"
#include "harness.hpp"

int main() {
  using namespace cyclops;
  using namespace cyclops::bench;

  const auto datasets = algo::make_all_datasets();
  RunOptions opts;
  opts.workers = 48;

  // --- Fig 10(1): normalized breakdown per benchmark and engine. ---
  std::puts("Figure 10(1): execution-time breakdown, 48 workers");
  std::puts("(paper: Hama dominated by SND+PRS; Cyclops/CyclopsMT by CMP)");
  for (const auto& d : datasets) {
    const graph::Csr g = graph::Csr::build(d.edges);
    for (EngineKind kind :
         {EngineKind::kHama, EngineKind::kCyclops, EngineKind::kCyclopsMT}) {
      const CellResult r = run_cell(d, g, kind, opts);
      const std::string label =
          std::string(d.name) + "/" + engine_name(kind);
      std::printf("%s\n", metrics::phase_breakdown_row(label, r.stats, true).c_str());
    }
  }

  // --- Fig 10(2)+(3): per-superstep series on GWeb. ---
  const algo::Dataset gweb = algo::make_gweb();
  const graph::Csr g = graph::Csr::build(gweb.edges);
  RunOptions series = opts;
  series.max_supersteps = 30;
  const CellResult hama = run_cell(gweb, g, EngineKind::kHama, series);
  const CellResult cy = run_cell(gweb, g, EngineKind::kCyclops, series);

  Table t({"superstep", "Hama active", "Cyclops active", "Hama msgs", "Cyclops msgs"});
  const std::size_t steps =
      std::max(hama.stats.supersteps.size(), cy.stats.supersteps.size());
  for (std::size_t s = 0; s < steps; ++s) {
    auto cell = [&](const CellResult& r, bool active) -> std::string {
      if (s >= r.stats.supersteps.size()) return "-";
      const auto& step = r.stats.supersteps[s];
      return Table::fmt_int(static_cast<long long>(
          active ? step.active_vertices : step.net.total_messages()));
    };
    t.add_row({Table::fmt_int(static_cast<long long>(s)), cell(hama, true),
               cell(cy, true), cell(hama, false), cell(cy, false)});
  }
  std::fputs(t.render("Figure 10(2)/(3): active vertices and messages per superstep, "
                      "PageRank on GWeb (paper: Cyclops decays, Hama stays flat)")
                 .c_str(),
             stdout);
  return 0;
}
