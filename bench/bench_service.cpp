// Service benchmark — multi-tenant throughput and latency on the
// epoch-versioned snapshot service. Replays the same 48-job mixed workload
// (PageRank/SSSP/CC across Hama, Cyclops, CyclopsMT and GAS) spread over
// 1 / 4 / 16 tenants against a serialized one-at-a-time baseline, with a
// topology delta committed mid-stream so snapshot-transition overhead is
// part of the measurement. Modeled wire/barrier time is realized as
// wall-clock sleep (calibrated so sleep ~= 5x compute), which is what makes
// cross-tenant overlap physical: wire-wait from different tenants' jobs
// overlaps exactly as it would on a real cluster, while compute still
// contends for the host cores. Emits BENCH_service.json for tooling.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cyclops/common/table.hpp"
#include "cyclops/common/timer.hpp"
#include "cyclops/service/service.hpp"
#include "harness.hpp"

namespace {

using namespace cyclops;
using service::Algo;
using service::EngineSel;

struct JobTemplate {
  Algo algo;
  EngineSel engine;
};

// The per-tenant job mix, cycled round-robin. Every engine family appears so
// the scheduler interleaves heterogeneous run times.
const JobTemplate kMix[] = {
    {Algo::kPageRank, EngineSel::kCyclops}, {Algo::kSssp, EngineSel::kHama},
    {Algo::kCc, EngineSel::kCyclopsMT},     {Algo::kPageRank, EngineSel::kGas},
    {Algo::kSssp, EngineSel::kCyclops},     {Algo::kPageRank, EngineSel::kHama},
    {Algo::kCc, EngineSel::kCyclops},       {Algo::kSssp, EngineSel::kGas},
};
constexpr std::size_t kJobs = 48;

struct ScenarioResult {
  std::string name;
  std::size_t tenants = 1;
  std::size_t slots = 1;
  std::size_t completed = 0;
  double makespan_s = 0;
  double throughput_jps = 0;  ///< completed jobs per second of makespan
  double p50_s = 0, p95_s = 0, p99_s = 0;  ///< submit-to-finish latency
  std::uint64_t epochs_published = 0;
  double snapshot_build_total_s = 0;
  double snapshot_build_last_s = 0;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

service::JobSpec make_spec(std::size_t i, std::size_t tenants) {
  service::JobSpec spec;
  spec.algo = kMix[i % std::size(kMix)].algo;
  spec.engine = kMix[i % std::size(kMix)].engine;
  spec.tenant = "tenant-" + std::to_string(i % tenants);
  spec.epsilon = 1e-6;
  spec.max_supersteps = 40;
  return spec;
}

/// One serial probe job measures compute vs modeled comm, so the realize
/// factor can be set to make sleep ~= 5x compute regardless of host speed.
double calibrate_realize(const graph::EdgeList& edges) {
  service::ServiceConfig cfg;
  cfg.scheduler.workers = 1;
  service::Service svc(edges, cfg);
  const auto sub = svc.submit(make_spec(0, 1));
  svc.wait_all();
  const auto stats = svc.scheduler().stats_for(sub.id);
  svc.shutdown();
  if (stats.modeled_comm_s <= 0) return 1.0;
  return std::max(1.0, 5.0 * stats.run_s / stats.modeled_comm_s);
}

ScenarioResult run_scenario(const std::string& name, const graph::EdgeList& edges,
                            std::size_t tenants, std::size_t slots,
                            std::size_t per_tenant, double realize) {
  service::ServiceConfig cfg;
  cfg.scheduler.workers = slots;
  cfg.scheduler.max_queue = kJobs + 8;
  cfg.scheduler.per_tenant_running = per_tenant;
  cfg.scheduler.realize_modeled_factor = realize;
  service::Service svc(edges, cfg);

  Timer wall;
  for (std::size_t i = 0; i < kJobs; ++i) {
    if (i == kJobs / 2) {
      // Mid-stream mutation batch: later jobs pin the new epoch while the
      // first half keeps running against epoch 0.
      core::TopologyDelta delta;
      delta.add_edge(0, 7, 2.0);
      delta.add_edge(7, 0, 2.0);
      delta.remove_edge(1, 2);
      svc.apply_delta(delta);
    }
    const auto sub = svc.submit(make_spec(i, tenants));
    if (!sub.accepted) {
      std::fprintf(stderr, "%s: unexpected rejection: %s\n", name.c_str(),
                   sub.reason.c_str());
    }
  }
  svc.wait_all();

  ScenarioResult r;
  r.name = name;
  r.tenants = tenants;
  r.slots = svc.scheduler().worker_slots();
  r.makespan_s = wall.elapsed_s();
  std::vector<double> latencies;
  for (const auto& js : svc.scheduler().all_stats()) {
    if (js.outcome != "ok") continue;
    ++r.completed;
    latencies.push_back(js.queue_wait_s + js.run_s);
  }
  r.throughput_jps = r.makespan_s > 0 ? static_cast<double>(r.completed) / r.makespan_s : 0;
  r.p50_s = percentile(latencies, 0.50);
  r.p95_s = percentile(latencies, 0.95);
  r.p99_s = percentile(latencies, 0.99);
  const auto snap = svc.snapshots().stats();
  r.epochs_published = snap.epochs_published;
  r.snapshot_build_total_s = snap.total_build_s;
  r.snapshot_build_last_s = snap.last_build_s;
  svc.shutdown();
  return r;
}

void emit_json(const std::vector<ScenarioResult>& rows, double realize,
               double speedup, bool claim_holds) {
  std::FILE* f = std::fopen("BENCH_service.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"service\",\n");
  std::fprintf(f, "  \"jobs_per_scenario\": %zu,\n", kJobs);
  std::fprintf(f, "  \"realize_modeled_factor\": %.3f,\n", realize);
  std::fprintf(f, "  \"speedup_4_tenants_vs_serialized\": %.3f,\n", speedup);
  std::fprintf(f, "  \"claim_speedup_gt_2x\": %s,\n", claim_holds ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"tenants\": %zu, \"slots\": %zu, "
                 "\"completed\": %zu, \"makespan_s\": %.4f, "
                 "\"throughput_jobs_per_s\": %.3f, \"latency_p50_s\": %.4f, "
                 "\"latency_p95_s\": %.4f, \"latency_p99_s\": %.4f, "
                 "\"epochs_published\": %llu, \"snapshot_build_total_s\": %.4f, "
                 "\"snapshot_build_last_s\": %.4f}%s\n",
                 r.name.c_str(), r.tenants, r.slots, r.completed, r.makespan_s,
                 r.throughput_jps, r.p50_s, r.p95_s, r.p99_s,
                 static_cast<unsigned long long>(r.epochs_published),
                 r.snapshot_build_total_s, r.snapshot_build_last_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::puts("wrote BENCH_service.json");
}

}  // namespace

int main(int argc, char** argv) {
  args::Parser p(argc, argv);
  algo::DatasetScale scale;
  scale.factor = p.get("--scale", 0.05);
  p.finish();

  algo::Dataset d = algo::make_gweb(scale);
  std::printf("dataset: %s\n", d.describe().c_str());

  const double realize = calibrate_realize(d.edges);
  std::printf("realize factor %.2f (sleep ~= 5x compute)\n", realize);

  std::vector<ScenarioResult> rows;
  rows.push_back(run_scenario("serialized", d.edges, 1, 1, 1, realize));
  rows.push_back(run_scenario("tenants-1", d.edges, 1, 8, 2, realize));
  rows.push_back(run_scenario("tenants-4", d.edges, 4, 8, 2, realize));
  rows.push_back(run_scenario("tenants-16", d.edges, 16, 8, 2, realize));

  Table t({"scenario", "tenants", "slots", "done", "makespan(s)", "jobs/s",
           "p50(s)", "p95(s)", "p99(s)", "epochs", "build(s)"});
  for (const auto& r : rows) {
    t.add_row({r.name, Table::fmt_int(r.tenants), Table::fmt_int(r.slots),
               Table::fmt_int(r.completed), Table::fmt(r.makespan_s, 3),
               Table::fmt(r.throughput_jps, 2), Table::fmt(r.p50_s, 3),
               Table::fmt(r.p95_s, 3), Table::fmt(r.p99_s, 3),
               Table::fmt_int(r.epochs_published),
               Table::fmt(r.snapshot_build_total_s, 4)});
  }
  std::fputs(t.render("Service: multi-tenant throughput/latency, 48 mixed jobs")
                 .c_str(),
             stdout);

  const double speedup =
      rows[0].throughput_jps > 0 ? rows[2].throughput_jps / rows[0].throughput_jps : 0;
  const bool claim_holds = speedup > 2.0;
  std::printf("aggregate throughput, 4 tenants vs serialized: %.2fx -> claim "
              "(> 2x): %s\n",
              speedup, claim_holds ? "yes" : "NO (regression!)");
  emit_json(rows, realize, speedup, claim_holds);
  return claim_holds ? 0 : 1;
}
