// Figure 9 — (1) speedup of Cyclops and CyclopsMT over Hama with 48 workers
// across all seven benchmarks, and (2) scalability with 6/12/24/48 workers
// (normalized to Hama with 6 workers). Hash partitioning, as in the paper's
// default configuration.

#include <cstdio>
#include <string>

#include "cyclops/graph/csr.hpp"
#include "cyclops/common/table.hpp"
#include "harness.hpp"

namespace {

using namespace cyclops;
using namespace cyclops::bench;

// Paper-reported speedups at 48 workers (hash partition) where §6.3 states
// them explicitly; "-" where the figure is only graphical.
struct PaperRef {
  const char* dataset;
  const char* cyclops;
  const char* cyclops_mt;
};
constexpr PaperRef kPaperFig9[] = {
    {"Amazon", "~2.1x", "~3x"},   {"GWeb", "~2.5x", "~4x"},
    {"LJournal", "~4x", "~7x"},   {"Wiki", "5.03x", "8.69x"},
    {"SYN-GL", "3.48x", "5.60x"}, {"DBLP", "2.55x", "5.54x"},
    {"RoadCA", "1.33x", "2.06x"},
};

void fig9_1(const std::vector<algo::Dataset>& datasets) {
  Table table({"benchmark", "dataset", "Hama(s)", "Cyclops(s)", "speedup",
               "CyclopsMT(s)", "speedup", "paper Cy", "paper MT"});
  RunOptions opts;
  opts.workers = 48;
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const auto& d = datasets[i];
    const graph::Csr g = graph::Csr::build(d.edges);
    const CellResult hama = run_cell(d, g, EngineKind::kHama, opts);
    const CellResult cy = run_cell(d, g, EngineKind::kCyclops, opts);
    const CellResult mt = run_cell(d, g, EngineKind::kCyclopsMT, opts);
    table.add_row({workload_name(d.workload), d.name, Table::fmt(hama.total_s, 3),
                   Table::fmt(cy.total_s, 3), Table::fmt(cy.speedup_over(hama), 2) + "x",
                   Table::fmt(mt.total_s, 3), Table::fmt(mt.speedup_over(hama), 2) + "x",
                   kPaperFig9[i].cyclops, kPaperFig9[i].cyclops_mt});
  }
  std::fputs(table.render("Figure 9(1): speedup over Hama, 48 workers, hash partition")
                 .c_str(),
             stdout);
}

void fig9_2(const std::vector<algo::Dataset>& datasets) {
  Table table({"benchmark", "dataset", "workers", "Hama", "Cyclops", "CyclopsMT"});
  for (const auto& d : datasets) {
    const graph::Csr g = graph::Csr::build(d.edges);
    double hama_base = 0;
    for (WorkerId workers : {6u, 12u, 24u, 48u}) {
      RunOptions opts;
      opts.workers = workers;
      const CellResult hama = run_cell(d, g, EngineKind::kHama, opts);
      const CellResult cy = run_cell(d, g, EngineKind::kCyclops, opts);
      const CellResult mt = run_cell(d, g, EngineKind::kCyclopsMT, opts);
      if (workers == 6) hama_base = hama.total_s;
      auto norm = [&](const CellResult& r) {
        return Table::fmt(r.total_s > 0 ? hama_base / r.total_s : 0.0, 2) + "x";
      };
      table.add_row({workload_name(d.workload), d.name, Table::fmt_int(workers),
                     norm(hama), norm(cy), norm(mt)});
    }
  }
  std::fputs(
      table
          .render(
              "Figure 9(2): scalability, speedup normalized to Hama with 6 workers")
          .c_str(),
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  cyclops::args::Parser p(argc, argv);
  const bool scalability_only = p.flag("--scalability");
  p.finish();
  const auto datasets = cyclops::algo::make_all_datasets();
  std::puts("Datasets (paper-scale -> stand-in scale):");
  for (const auto& d : datasets) std::printf("  %s\n", d.describe().c_str());
  if (!scalability_only) fig9_1(datasets);
  fig9_2(datasets);
  return 0;
}
