// Figure 13 — (1) graph ingress time breakdown (load / replicate / init) for
// Hama vs Cyclops on all seven datasets, (2) CyclopsMT execution time as the
// ALS input grows (scale-with-graph-size), (3) L1-norm distance to the final
// PageRank over time for Hama, Cyclops and CyclopsMT on GWeb.

#include <cstdio>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/common/timer.hpp"
#include "cyclops/core/layout.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/metrics/convergence.hpp"
#include "harness.hpp"

namespace {
using namespace cyclops;
using namespace cyclops::bench;

void fig13_1(const std::vector<algo::Dataset>& datasets) {
  Table t({"dataset", "LD(s)", "REP(s)", "INIT(s)", "TOT Hama(s)", "TOT Cyclops(s)"});
  for (const auto& d : datasets) {
    // LD: text-free in-memory build (CSR construction stands in for the HDFS
    // load + vertex distribution both systems share).
    Timer ld;
    const graph::Csr g = graph::Csr::build(d.edges);
    const double ld_s = ld.elapsed_s();
    const auto part = partition::HashPartitioner{}.partition(g, 48);
    // Hama ingress = LD only (no replicas); Cyclops adds REP + INIT.
    const core::Layout layout = core::build_layout(g, part);
    t.add_row({d.name, Table::fmt(ld_s, 3), Table::fmt(layout.replicate_s, 3),
               Table::fmt(layout.init_s, 3), Table::fmt(ld_s, 3),
               Table::fmt(ld_s + layout.replicate_s + layout.init_s, 3)});
  }
  std::fputs(t.render("Figure 13(1): ingress time breakdown (paper: Cyclops pays a "
                      "modest one-time replication cost over Hama)")
                 .c_str(),
             stdout);
}

void fig13_2() {
  // Paper sweeps ALS from 0.34M to 20.2M edges; scaled here by the same 59x
  // span starting from a smaller base.
  Table t({"edges", "CyclopsMT time(s)", "Hama time(s)"});
  for (double factor : {0.125, 0.25, 0.5, 1.0, 2.0}) {
    algo::DatasetScale scale;
    scale.factor = factor;
    const algo::Dataset d = algo::make_syn_gl(scale);
    const graph::Csr g = graph::Csr::build(d.edges);
    RunOptions opts;
    opts.workers = 48;
    const CellResult mt = run_cell(d, g, EngineKind::kCyclopsMT, opts);
    const CellResult hama = run_cell(d, g, EngineKind::kHama, opts);
    t.add_row({Table::fmt_int(static_cast<long long>(d.edges.num_edges())),
               Table::fmt(mt.total_s, 3), Table::fmt(hama.total_s, 3)});
  }
  std::fputs(t.render("Figure 13(2): ALS execution time vs graph size "
                      "(paper: near-linear growth, 9.6s@0.34M -> 207.7s@20.2M)")
                 .c_str(),
             stdout);
}

void fig13_3() {
  const algo::Dataset gweb = algo::make_gweb();
  const graph::Csr g = graph::Csr::build(gweb.edges);
  const auto reference = algo::pagerank_reference(g);

  struct Series {
    const char* name;
    std::vector<metrics::ConvergenceTracker::Point> points;
  };
  std::vector<Series> series;

  {  // Hama
    algo::PageRankBsp prog;
    prog.epsilon = 1e-10;
    bsp::Config cfg;
    cfg.topo = sim::Topology{6, 8};
    cfg.max_supersteps = 30;
    bsp::Engine<algo::PageRankBsp> engine(
        g, partition::HashPartitioner{}.partition(g, 48), prog, cfg);
    metrics::ConvergenceTracker tracker(reference);
    double clock = 0;
    engine.set_observer([&](const metrics::SuperstepStats& s, std::span<const double> v) {
      clock += s.phases.total_s() + s.modeled_comm_s + s.modeled_barrier_s;
      tracker.sample(clock, v);
    });
    (void)engine.run();
    series.push_back({"Hama", tracker.points()});
  }
  for (bool mt : {false, true}) {
    algo::PageRankCyclops prog;
    prog.epsilon = 1e-10;
    core::Config cfg = mt ? core::Config::cyclops_mt(6, 8, 2) : core::Config::cyclops(6, 8);
    cfg.max_supersteps = 30;
    const WorkerId parts = cfg.topo.total_workers();
    core::Engine<algo::PageRankCyclops> engine(
        g, partition::HashPartitioner{}.partition(g, parts), prog, cfg);
    metrics::ConvergenceTracker tracker(reference);
    double clock = 0;
    engine.set_observer([&](const metrics::SuperstepStats& s,
                            const core::Engine<algo::PageRankCyclops>& e) {
      clock += s.phases.total_s() + s.modeled_comm_s + s.modeled_barrier_s;
      tracker.sample(clock, e.values());
    });
    (void)engine.run();
    series.push_back({mt ? "CyclopsMT" : "Cyclops", tracker.points()});
  }

  Table t({"series", "superstep", "elapsed(s)", "L1-norm distance"});
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.points.size(); ++i) {
      t.add_row({s.name, Table::fmt_int(static_cast<long long>(i)),
                 Table::fmt(s.points[i].elapsed_s, 4), Table::fmt(s.points[i].l1, 9)});
    }
  }
  std::fputs(t.render("Figure 13(3): L1-norm distance to final PageRank over time "
                      "(paper: Cyclops/CyclopsMT converge markedly faster than Hama)")
                 .c_str(),
             stdout);
}

}  // namespace

int main() {
  const auto datasets = cyclops::algo::make_all_datasets();
  fig13_1(datasets);
  fig13_2();
  fig13_3();
  return 0;
}
