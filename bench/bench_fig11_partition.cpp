// Figure 11 — the partitioning study: (1) replication factor vs number of
// partitions on the Wiki stand-in (hash vs Metis-like multilevel),
// (2) replication factor per dataset at 48 partitions, (3) engine speedups
// under the multilevel partition (normalized to Hama under the same
// partition).

#include <cstdio>
#include <string>

#include "cyclops/graph/csr.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/partition/multilevel.hpp"
#include "cyclops/partition/partition.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace cyclops;
  using namespace cyclops::bench;
  args::Parser p(argc, argv);
  const bool perf_only = p.flag("--perf");
  p.finish();

  const auto datasets = algo::make_all_datasets();

  if (!perf_only) {
    // --- Fig 11(1): replication factor vs #partitions on Wiki. ---
    const algo::Dataset wiki = algo::make_wiki();
    const graph::Csr g = graph::Csr::build(wiki.edges);
    Table t1({"partitions", "hash", "multilevel(metis)"});
    for (WorkerId parts : {6u, 12u, 24u, 48u}) {
      const auto hash_q =
          partition::evaluate(g, partition::HashPartitioner{}.partition(g, parts));
      const auto ml_q =
          partition::evaluate(g, partition::MultilevelPartitioner{}.partition(g, parts));
      t1.add_row({Table::fmt_int(parts), Table::fmt(hash_q.replication_factor, 2),
                  Table::fmt(ml_q.replication_factor, 2)});
    }
    std::fputs(t1.render("Figure 11(1): replication factor vs partitions, Wiki "
                         "(paper: hash approaches avg degree; Metis much lower)")
                   .c_str(),
               stdout);

    // --- Fig 11(2): replication factor per dataset at 48 partitions. ---
    Table t2({"dataset", "hash", "multilevel(metis)"});
    for (const auto& d : datasets) {
      const graph::Csr dg = graph::Csr::build(d.edges);
      const auto hash_q =
          partition::evaluate(dg, partition::HashPartitioner{}.partition(dg, 48));
      const auto ml_q =
          partition::evaluate(dg, partition::MultilevelPartitioner{}.partition(dg, 48));
      t2.add_row({d.name, Table::fmt(hash_q.replication_factor, 2),
                  Table::fmt(ml_q.replication_factor, 2)});
    }
    std::fputs(t2.render("Figure 11(2): replication factor per dataset, 48 partitions "
                         "(paper: RoadCA near 0.07 extra; web graphs 4-8)")
                   .c_str(),
               stdout);
  }

  // --- Fig 11(3): speedups under the multilevel partition. ---
  Table t3({"benchmark", "dataset", "Hama(s)", "Cyclops", "CyclopsMT",
            "paper Cy", "paper MT"});
  // §6.3/§6.6: with Metis, Cyclops reaches 5.95x-23.04x over Hama.
  const char* paper_cy[] = {"~6x", "~8x", "~12x", "~15x", "~9x", "~7x", "~6x"};
  const char* paper_mt[] = {"~9x", "~12x", "~18x", "23.04x", "~14x", "~12x", "~8x"};
  RunOptions opts;
  opts.workers = 48;
  opts.multilevel = true;
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const auto& d = datasets[i];
    const graph::Csr g = graph::Csr::build(d.edges);
    const CellResult hama = run_cell(d, g, EngineKind::kHama, opts);
    const CellResult cy = run_cell(d, g, EngineKind::kCyclops, opts);
    const CellResult mt = run_cell(d, g, EngineKind::kCyclopsMT, opts);
    t3.add_row({workload_name(d.workload), d.name, Table::fmt(hama.total_s, 3),
                Table::fmt(cy.speedup_over(hama), 2) + "x",
                Table::fmt(mt.speedup_over(hama), 2) + "x", paper_cy[i], paper_mt[i]});
  }
  std::fputs(t3.render("Figure 11(3): speedup over Hama under multilevel (Metis-like) "
                       "partition, 48 workers")
                 .c_str(),
             stdout);
  return 0;
}
