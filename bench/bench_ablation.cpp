// Ablation study for the design choices DESIGN.md §4 calls out. Each section
// toggles exactly one mechanism and reports messages + execution time, so the
// contribution of every Cyclops ingredient is measurable in isolation:
//   A  dynamic computation (skip converged vertices) on/off
//   B  hierarchical barrier (CyclopsMT) vs flat barrier
//   C  Hama's combiner on/off (how far the *baseline* can be helped)
//   D  partitioner ladder: hash -> streaming LDG -> multilevel
//      (replication factor drives messages drives time)

#include <cstdio>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/ldg.hpp"
#include "cyclops/partition/multilevel.hpp"
#include "harness.hpp"

namespace {
using namespace cyclops;

struct Row {
  double total_s = 0;
  std::uint64_t messages = 0;
  std::uint64_t computed = 0;
};

Row run_cyclops(const graph::Csr& g, const partition::EdgeCutPartition& part,
                core::Config cfg) {
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-9;
  cfg.max_supersteps = 40;
  core::Engine<algo::PageRankCyclops> engine(g, part, pr, cfg);
  const auto stats = engine.run();
  Row r;
  r.total_s = stats.total_time_s();
  r.messages = stats.net_totals().total_messages();
  for (const auto& s : stats.supersteps) r.computed += s.computed_vertices;
  return r;
}

}  // namespace

int main() {
  using namespace cyclops;
  const algo::Dataset gweb = algo::make_gweb();
  const graph::Csr g = graph::Csr::build(gweb.edges);
  std::printf("Dataset: %s\n\n", gweb.describe().c_str());
  const auto hash48 = partition::HashPartitioner{}.partition(g, 48);

  {  // A: dynamic computation
    Table t({"dynamic computation", "computed vertices", "messages", "time(s)"});
    core::Config base = core::Config::cyclops(6, 8);
    const Row on = run_cyclops(g, hash48, base);
    core::Config forced = base;
    forced.force_all_active = true;
    const Row off = run_cyclops(g, hash48, forced);
    t.add_row({"on (Cyclops default)", Table::fmt_int(static_cast<long long>(on.computed)),
               Table::fmt_int(static_cast<long long>(on.messages)), Table::fmt(on.total_s, 3)});
    t.add_row({"off (all vertices every superstep)",
               Table::fmt_int(static_cast<long long>(off.computed)),
               Table::fmt_int(static_cast<long long>(off.messages)),
               Table::fmt(off.total_s, 3)});
    std::fputs(t.render("Ablation A: dynamic computation via distributed activation").c_str(),
               stdout);
  }

  {  // B: hierarchical barrier
    Table t({"barrier", "modeled barrier time(s)", "total(s)"});
    for (bool hierarchical : {false, true}) {
      algo::PageRankCyclops pr;
      pr.epsilon = 1e-9;
      core::Config cfg = core::Config::cyclops_mt(6, 8, 2);
      cfg.hierarchical_barrier = hierarchical;
      cfg.max_supersteps = 40;
      core::Engine<algo::PageRankCyclops> engine(
          g, partition::HashPartitioner{}.partition(g, 6), pr, cfg);
      const auto stats = engine.run();
      t.add_row({hierarchical ? "hierarchical (machines only)" : "flat (all participants)",
                 Table::fmt(stats.modeled_barrier_s(), 4),
                 Table::fmt(stats.total_time_s(), 3)});
    }
    std::fputs(t.render("Ablation B: hierarchical barrier (CyclopsMT, 6x1x8/2)").c_str(),
               stdout);
  }

  {  // C: Hama combiner
    Table t({"Hama combiner", "messages", "time(s)"});
    for (bool combine : {false, true}) {
      algo::PageRankBsp pr;
      pr.epsilon = 1e-9;
      bsp::Config cfg;
      cfg.topo = sim::Topology{6, 8};
      cfg.use_combiner = combine;
      cfg.max_supersteps = 40;
      bsp::Engine<algo::PageRankBsp> engine(g, hash48, pr, cfg);
      const auto stats = engine.run();
      t.add_row({combine ? "on" : "off",
                 Table::fmt_int(static_cast<long long>(stats.net_totals().total_messages())),
                 Table::fmt(stats.total_time_s(), 3)});
    }
    std::fputs(t.render("Ablation C: Hama sender-side combiner (best-case baseline)").c_str(),
               stdout);
  }

  {  // D: partitioner ladder
    Table t({"partitioner", "replication factor", "messages", "Cyclops time(s)"});
    struct Entry {
      const char* name;
      partition::EdgeCutPartition part;
    };
    std::vector<Entry> entries;
    entries.push_back({"hash", partition::HashPartitioner{}.partition(g, 48)});
    entries.push_back({"ldg (streaming)", partition::LdgPartitioner{}.partition(g, 48)});
    entries.push_back({"multilevel", partition::MultilevelPartitioner{}.partition(g, 48)});
    for (const auto& e : entries) {
      const auto q = partition::evaluate(g, e.part);
      const Row r = run_cyclops(g, e.part, core::Config::cyclops(6, 8));
      t.add_row({e.name, Table::fmt(q.replication_factor, 2),
                 Table::fmt_int(static_cast<long long>(r.messages)),
                 Table::fmt(r.total_s, 3)});
    }
    std::fputs(t.render("Ablation D: partition quality -> replicas -> messages -> time")
                   .c_str(),
               stdout);
  }
  return 0;
}
