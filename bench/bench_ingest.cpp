// BENCH_ingest — the streaming-ingestion benchmark. Three questions:
//
//   1. Publication throughput + staleness: mutations/sec through a
//      MutationIngestor into a SnapshotStore, full-copy publication vs
//      structural-sharing overlay publication, plus the mean op->published-
//      epoch staleness each achieves at a fixed batch size.
//
//   2. Memory: the o(|E|) claim — an overlay epoch's store-resident bytes
//      (patch only) vs the flat base store it shares structure with.
//
//   3. Incremental re-convergence: per published epoch, the incremental
//      engines (delta-PR on GWeb, SSSP on a road grid, CC on GWeb) vs a cold
//      from-scratch run on the same snapshot — supersteps, messages, and
//      modeled time (simulated compute phases + modeled wire/barrier cost;
//      wall-clock free, so the ratios are deterministic).
//
// `--smoke` shrinks everything for CI; `--gate <baseline.json>` compares
// against a recorded smoke baseline: wall-clock rows (mutations/sec) gate at
// GATE_SLACK x baseline to absorb host noise, deterministic rows (superstep/
// modeled-time reduction ratios) gate at 0.9x. The full-size run additionally
// enforces the acceptance bars: >= 3x modeled-time reduction for PR and SSSP,
// >= 3x superstep reduction for SSSP, and overlay epochs resident under 10%
// of the flat base. (Delta-PR's superstep reduction is contraction-depth
// limited — residuals must decay below epsilon at the same 0.85/round rate a
// cold run pays — so its wins are messages and modeled time, not rounds; the
// JSON reports its superstep ratio honestly but does not gate a 3x bar on
// it.) Results land in BENCH_ingest.json in the working directory.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cyclops/algorithms/datasets.hpp"
#include "cyclops/common/args.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/ingest/incremental.hpp"
#include "cyclops/ingest/ingestor.hpp"
#include "cyclops/ingest/trace.hpp"
#include "cyclops/service/snapshot.hpp"

namespace {

using namespace cyclops;

constexpr double kWallGateSlack = 0.15;  ///< wall-clock rows: host noise
constexpr double kRatioGateSlack = 0.9;  ///< deterministic reduction ratios

struct PublicationRow {
  std::string mode;  ///< "full" | "overlay"
  std::uint64_t ops = 0;
  std::uint64_t epochs = 0;
  double mutations_per_s = 0;
  double mean_staleness_ms = 0;
  double publish_s = 0;
  std::uint64_t base_resident = 0;        ///< flat epoch-0 store bytes
  std::uint64_t mean_epoch_resident = 0;  ///< mean store bytes per mutation epoch
};

struct IncrementalRow {
  std::string algo;
  std::uint64_t epochs = 0;
  std::uint64_t inc_supersteps = 0;
  std::uint64_t cold_supersteps = 0;
  std::uint64_t inc_messages = 0;
  std::uint64_t cold_messages = 0;
  double inc_modeled_s = 0;
  double cold_modeled_s = 0;
  std::uint64_t reset_vertices = 0;
  std::uint64_t activated_vertices = 0;

  [[nodiscard]] double superstep_ratio() const {
    return inc_supersteps > 0
               ? static_cast<double>(cold_supersteps) / static_cast<double>(inc_supersteps)
               : 0.0;
  }
  [[nodiscard]] double message_ratio() const {
    return inc_messages > 0
               ? static_cast<double>(cold_messages) / static_cast<double>(inc_messages)
               : 0.0;
  }
  [[nodiscard]] double modeled_time_ratio() const {
    return inc_modeled_s > 0 ? cold_modeled_s / inc_modeled_s : 0.0;
  }
};

/// Modeled run time: simulated phase work + modeled wire/barrier cost.
/// (Not elapsed_s — that is host wall time and accumulates noise.)
double modeled_run_s(const metrics::RunStats& run) {
  return run.phase_totals().total_s() + run.modeled_comm_total_s();
}

/// Locality-preserving mutation trace for the road grid: diagonal-shortcut
/// adds at random cells, weighted like roughly one lattice hop so each
/// improvement wavefront stays regional, plus a fraction of removals drawn
/// from earlier adds. (synth_trace's random-pair adds would create global
/// shortcuts on a grid — every one forces a diameter-length re-propagation,
/// which is a full-recompute workload, not the small-delta regime this
/// benchmark measures.)
std::vector<ingest::MutationOp> local_grid_trace(VertexId rows, VertexId cols,
                                                 std::size_t ops, std::uint64_t seed) {
  std::vector<ingest::MutationOp> trace;
  std::vector<std::pair<VertexId, VertexId>> added;
  std::uint64_t x = seed;
  const auto next = [&x]() {  // splitmix64: seeded, wall-clock free
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (std::size_t i = 0; i < ops; ++i) {
    ingest::MutationOp op;
    op.at_s = 1e-4 * static_cast<double>(i);
    if (i % 10 == 9 && !added.empty()) {
      const auto [s, d] = added[next() % added.size()];
      op.is_add = false;
      op.src = s;
      op.dst = d;
    } else {
      const VertexId r = static_cast<VertexId>(next() % (rows - 1));
      const VertexId c = static_cast<VertexId>(next() % (cols - 1));
      op.src = r * cols + c;
      op.dst = (r + 1) * cols + (c + 1);
      // Priced near the two-hop alternative it bypasses (lattice weights are
      // lognormal with median ~1.5/hop): improvements are small, so the
      // affected cone — vertices whose shortest path adopts the shortcut —
      // stays regional instead of sweeping the whole grid.
      op.weight = 2.0 + 1e-3 * static_cast<double>(next() % 2000);
      added.emplace_back(op.src, op.dst);
    }
    trace.push_back(op);
  }
  return trace;
}

service::SnapshotConfig snapshot_config(bool overlay) {
  service::SnapshotConfig cfg;
  cfg.machines = 2;
  cfg.workers_per_machine = 2;
  cfg.overlay_publish = overlay;
  return cfg;
}

// ------------------------------------------------- publication throughput

PublicationRow publication_run(const char* mode, bool overlay, const graph::EdgeList& base,
                               const std::vector<ingest::MutationOp>& trace,
                               std::size_t batch) {
  service::SnapshotStore store(base, snapshot_config(overlay));
  PublicationRow row;
  row.mode = mode;
  row.base_resident = store.current()->store().memory().resident_bytes;

  std::uint64_t resident_sum = 0;
  std::uint64_t resident_epochs = 0;
  ingest::MutationIngestor ingestor(store, {batch, /*max_delay_s=*/1e9});
  ingestor.set_epoch_hook([&](service::Epoch, const core::TopologyDelta&) {
    resident_sum += store.current()->store().memory().resident_bytes;
    ++resident_epochs;
  });
  for (const ingest::MutationOp& op : trace) ingestor.offer(op);
  ingestor.flush();

  const ingest::IngestStats& s = ingestor.stats();
  row.ops = s.ops;
  row.epochs = s.batches;
  row.mutations_per_s = s.mutations_per_s();
  row.mean_staleness_ms = 1e3 * s.mean_staleness_s();
  row.publish_s = s.publish_s;
  row.mean_epoch_resident =
      resident_epochs > 0 ? resident_sum / resident_epochs : 0;
  return row;
}

// ------------------------------------------------ incremental vs cold

/// Replays `trace` through an ingestor; per epoch, advances the incremental
/// engine and runs a cold engine from scratch on the same snapshot.
template <typename Incremental, typename Prog>
IncrementalRow incremental_run(const char* algo, const graph::EdgeList& base,
                               const std::vector<ingest::MutationOp>& trace,
                               std::size_t batch, Prog prog,
                               const ingest::IncrementalConfig& icfg) {
  service::SnapshotStore store(base, snapshot_config(/*overlay=*/true));
  IncrementalRow row;
  row.algo = algo;

  Incremental inc(store.current(), prog, icfg);
  (void)inc.cold_run();  // epoch-0 convergence is common to both sides

  ingest::MutationIngestor ingestor(store, {batch, /*max_delay_s=*/1e9});
  ingestor.set_epoch_hook([&](service::Epoch, const core::TopologyDelta& delta) {
    const service::SnapshotRef snap = store.current();
    const ingest::EpochAdvance adv = inc.advance(snap, delta);
    row.inc_supersteps += adv.run.supersteps.size();
    row.inc_messages += adv.run.net_totals().total_messages();
    row.inc_modeled_s += modeled_run_s(adv.run);
    row.reset_vertices += adv.reset_vertices;
    row.activated_vertices += adv.activated_vertices;

    Incremental cold(snap, prog, icfg);
    const metrics::RunStats cs = cold.cold_run();
    row.cold_supersteps += cs.supersteps.size();
    row.cold_messages += cs.net_totals().total_messages();
    row.cold_modeled_s += modeled_run_s(cs);
    ++row.epochs;
  });
  for (const ingest::MutationOp& op : trace) ingestor.offer(op);
  ingestor.flush();
  return row;
}

// ------------------------------------------------------------------- gate

double baseline_field(const std::string& json, const std::string& row_key,
                      const std::string& field) {
  const std::size_t at = json.find(row_key);
  if (at == std::string::npos) return 0;
  const std::string f = "\"" + field + "\": ";
  const std::size_t pos = json.find(f, at);
  if (pos == std::string::npos) return 0;
  return std::strtod(json.c_str() + pos + f.size(), nullptr);
}

int apply_gate(const std::string& baseline_path, const std::vector<PublicationRow>& pub,
               const std::vector<IncrementalRow>& inc) {
  std::ifstream in(baseline_path);
  if (!in.good()) {
    std::fprintf(stderr, "gate: cannot read baseline %s\n", baseline_path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  int failures = 0;

  for (const PublicationRow& r : pub) {
    const double base =
        baseline_field(json, "\"mode\": \"" + r.mode + "\"", "mutations_per_sec");
    if (base <= 0) {
      std::fprintf(stderr, "gate: no baseline row for mode %s — skipping\n",
                   r.mode.c_str());
      continue;
    }
    const double floor = kWallGateSlack * base;
    const bool ok = r.mutations_per_s >= floor;
    std::printf("gate: publish %-7s  %.3g mut/s vs baseline %.3g (floor %.3g) %s\n",
                r.mode.c_str(), r.mutations_per_s, base, floor, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }
  for (const IncrementalRow& r : inc) {
    const std::string key = "\"algo\": \"" + r.algo + "\"";
    struct Check {
      const char* field;
      double current;
    } checks[] = {{"superstep_ratio", r.superstep_ratio()},
                  {"modeled_time_ratio", r.modeled_time_ratio()}};
    for (const Check& c : checks) {
      const double base = baseline_field(json, key, c.field);
      if (base <= 0) {
        std::fprintf(stderr, "gate: no baseline %s for %s — skipping\n", c.field,
                     r.algo.c_str());
        continue;
      }
      const double floor = kRatioGateSlack * base;
      const bool ok = c.current >= floor;
      std::printf("gate: %-4s %-18s %.3g vs baseline %.3g (floor %.3g) %s\n",
                  r.algo.c_str(), c.field, c.current, base, floor, ok ? "ok" : "FAIL");
      if (!ok) ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// ------------------------------------------------------------------- output

void emit_json(bool smoke, const std::vector<PublicationRow>& pub,
               const std::vector<IncrementalRow>& inc) {
  std::FILE* f = std::fopen("BENCH_ingest.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ingest.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"ingest\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(f, "  \"wall_gate_slack\": %.2f,\n  \"ratio_gate_slack\": %.2f,\n",
               kWallGateSlack, kRatioGateSlack);
  std::fprintf(f, "  \"publication\": [\n");
  for (std::size_t i = 0; i < pub.size(); ++i) {
    const PublicationRow& r = pub[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"ops\": %llu, \"epochs\": %llu, "
                 "\"mutations_per_sec\": %.1f, \"mean_staleness_ms\": %.4f, "
                 "\"publish_s\": %.6f, \"base_resident_bytes\": %llu, "
                 "\"mean_epoch_resident_bytes\": %llu}%s\n",
                 r.mode.c_str(), static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.epochs), r.mutations_per_s,
                 r.mean_staleness_ms, r.publish_s,
                 static_cast<unsigned long long>(r.base_resident),
                 static_cast<unsigned long long>(r.mean_epoch_resident),
                 i + 1 < pub.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"incremental\": [\n");
  for (std::size_t i = 0; i < inc.size(); ++i) {
    const IncrementalRow& r = inc[i];
    std::fprintf(f,
                 "    {\"algo\": \"%s\", \"epochs\": %llu, "
                 "\"inc_supersteps\": %llu, \"cold_supersteps\": %llu, "
                 "\"superstep_ratio\": %.3f, \"inc_messages\": %llu, "
                 "\"cold_messages\": %llu, \"message_ratio\": %.3f, "
                 "\"inc_modeled_s\": %.6f, \"cold_modeled_s\": %.6f, "
                 "\"modeled_time_ratio\": %.3f, \"reset_vertices\": %llu, "
                 "\"activated_vertices\": %llu}%s\n",
                 r.algo.c_str(), static_cast<unsigned long long>(r.epochs),
                 static_cast<unsigned long long>(r.inc_supersteps),
                 static_cast<unsigned long long>(r.cold_supersteps), r.superstep_ratio(),
                 static_cast<unsigned long long>(r.inc_messages),
                 static_cast<unsigned long long>(r.cold_messages), r.message_ratio(),
                 r.inc_modeled_s, r.cold_modeled_s, r.modeled_time_ratio(),
                 static_cast<unsigned long long>(r.reset_vertices),
                 static_cast<unsigned long long>(r.activated_vertices),
                 i + 1 < inc.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  args::Parser p(argc, argv);
  const bool smoke = p.flag("--smoke");
  const std::string gate = p.get("--gate", std::string{});
  p.finish();

  // Base graphs. GWeb for PR/CC (the paper's web-graph workload); a road
  // grid for SSSP so the cold runs pay diameter-many supersteps, which is
  // what an incremental frontier restart saves.
  const double gweb_scale = smoke ? 0.05 : 0.4;
  graph::EdgeList gweb = std::move(algo::make_gweb({gweb_scale}).edges);
  graph::gen::RoadSpec road;
  road.rows = smoke ? 30 : 80;
  road.cols = smoke ? 30 : 80;
  road.shortcut_fraction = 0.0;
  graph::EdgeList grid = graph::gen::road_grid(road, 77);

  const std::size_t ops = smoke ? 192 : 1024;
  const std::size_t batch = 32;

  // Synthetic traces: adds between random vertices, removes drawn from the
  // trace's own earlier adds. Each 32-op batch stays well under 1% of |E|
  // in the full-size run — the "small delta" regime the acceptance bar is
  // about.
  ingest::TraceSpec gweb_spec;
  gweb_spec.ops = ops;
  gweb_spec.num_vertices = gweb.num_vertices();
  gweb_spec.seed = 7;
  const std::vector<ingest::MutationOp> gweb_trace = ingest::synth_trace(gweb_spec);

  ingest::TraceSpec cc_spec = gweb_spec;
  cc_spec.undirected = true;
  const std::vector<ingest::MutationOp> cc_trace = ingest::synth_trace(cc_spec);

  const std::vector<ingest::MutationOp> grid_trace =
      local_grid_trace(road.rows, road.cols, ops, 11);

  // 1. Publication throughput + staleness, full copy vs overlay.
  std::vector<PublicationRow> pub;
  pub.push_back(publication_run("full", false, gweb, gweb_trace, batch));
  pub.push_back(publication_run("overlay", true, gweb, gweb_trace, batch));

  Table pub_table({"mode", "ops", "epochs", "mut/s", "staleness(ms)", "publish(s)",
                   "base resident", "epoch resident"});
  for (const PublicationRow& r : pub) {
    pub_table.add_row({r.mode, Table::fmt_int(static_cast<long long>(r.ops)),
                       Table::fmt_int(static_cast<long long>(r.epochs)),
                       Table::fmt(r.mutations_per_s, 0),
                       Table::fmt(r.mean_staleness_ms, 4), Table::fmt(r.publish_s, 4),
                       Table::fmt_int(static_cast<long long>(r.base_resident)),
                       Table::fmt_int(static_cast<long long>(r.mean_epoch_resident))});
  }
  std::fputs(pub_table.render("Publication: full copy vs structural-sharing overlay")
                 .c_str(),
             stdout);

  // 2+3. Incremental vs cold per epoch.
  std::vector<IncrementalRow> inc;
  {
    // Serving-grade tolerance: with epsilon above the per-delta perturbation
    // scale, the incremental residual dies in a few rounds while a cold run
    // still pays the full contraction depth. (At epsilon far below the
    // perturbation, delta-PR's round count converges to the cold one — see
    // the file header.)
    algo::PageRankCyclops prog;
    prog.epsilon = 1e-6;
    inc.push_back(incremental_run<ingest::IncrementalPageRank>(
        "pr", gweb, gweb_trace, batch, prog,
        ingest::make_incremental_config(snapshot_config(true), false, 4, 2, 5000)));
  }
  {
    algo::SsspCyclops prog;
    prog.source = 0;
    inc.push_back(incremental_run<ingest::IncrementalSssp>(
        "sssp", grid, grid_trace, batch, prog,
        ingest::make_incremental_config(snapshot_config(true), false, 4, 2, 5000)));
  }
  {
    algo::CcCyclops prog;
    inc.push_back(incremental_run<ingest::IncrementalCc>(
        "cc", gweb, cc_trace, batch, prog,
        ingest::make_incremental_config(snapshot_config(true), false, 4, 2, 5000)));
  }

  Table inc_table({"algo", "epochs", "supersteps inc/cold", "ratio",
                   "messages inc/cold", "ratio", "modeled(s) inc/cold", "ratio"});
  for (const IncrementalRow& r : inc) {
    inc_table.add_row(
        {r.algo, Table::fmt_int(static_cast<long long>(r.epochs)),
         Table::fmt_int(static_cast<long long>(r.inc_supersteps)) + "/" +
             Table::fmt_int(static_cast<long long>(r.cold_supersteps)),
         Table::fmt(r.superstep_ratio(), 2),
         Table::fmt_int(static_cast<long long>(r.inc_messages)) + "/" +
             Table::fmt_int(static_cast<long long>(r.cold_messages)),
         Table::fmt(r.message_ratio(), 2),
         Table::fmt(r.inc_modeled_s, 4) + "/" + Table::fmt(r.cold_modeled_s, 4),
         Table::fmt(r.modeled_time_ratio(), 2)});
  }
  std::fputs(inc_table.render("Incremental re-convergence vs cold per-epoch runs")
                 .c_str(),
             stdout);

  emit_json(smoke, pub, inc);

  int rc = 0;
  if (!smoke) {
    // Acceptance bars (full-size run only; smoke graphs are too small for
    // the asymptotic claims to bind).
    const PublicationRow& ov = pub[1];
    const bool mem_ok = ov.mean_epoch_resident * 10 < ov.base_resident;
    std::printf("overlay epoch resident %llu vs flat base %llu %s\n",
                static_cast<unsigned long long>(ov.mean_epoch_resident),
                static_cast<unsigned long long>(ov.base_resident),
                mem_ok ? "(o(|E|): ok)" : "(FAIL: expected <10%)");
    if (!mem_ok) rc = 1;
    for (const IncrementalRow& r : inc) {
      if (r.algo == "cc") continue;
      const bool time_ok = r.modeled_time_ratio() >= 3.0;
      std::printf("%s modeled-time reduction %.2fx %s\n", r.algo.c_str(),
                  r.modeled_time_ratio(), time_ok ? "(>= 3x: ok)" : "(FAIL)");
      if (!time_ok) rc = 1;
      if (r.algo == "sssp") {
        const bool ss_ok = r.superstep_ratio() >= 3.0;
        std::printf("sssp superstep reduction %.2fx %s\n", r.superstep_ratio(),
                    ss_ok ? "(>= 3x: ok)" : "(FAIL)");
        if (!ss_ok) rc = 1;
      }
    }
  }
  if (!gate.empty()) rc |= apply_gate(gate, pub, inc);
  return rc;
}
