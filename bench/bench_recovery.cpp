// Recovery benchmark — FTPregel-style checkpoint/recovery cost across the
// three engines (§3.6: Cyclops checkpoints are cheap because replicas and
// in-flight messages regenerate from the immutable view, while Hama/BSP must
// also persist every pending in-queue message). Each cell runs PageRank with
// periodic checkpoints and one injected machine crash, then reports
// checkpoint size, modeled stable-storage write time, lost supersteps and
// modeled time-to-recover. Emits BENCH_recovery.json for tooling.

#include <cstdio>
#include <string>
#include <vector>

#include "cyclops/graph/csr.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/runtime/recovery.hpp"
#include "cyclops/sim/fault.hpp"
#include "harness.hpp"

namespace {

using namespace cyclops;
using namespace cyclops::bench;

struct Row {
  std::string dataset;
  std::string engine;
  std::string mode;
  metrics::RecoveryStats rec;
  double total_s = 0;
  std::size_t supersteps = 0;
};

constexpr Superstep kCheckpointEvery = 5;
constexpr Superstep kCrashAt = 12;
constexpr Superstep kMaxSupersteps = 30;

sim::FaultPlan crash_plan() {
  sim::FaultPlan plan;
  plan.seed = 42;
  plan.crash_at = kCrashAt;
  plan.crash_machine = 1;
  return plan;
}

template <typename MakeEngine>
Row run_cell_recovery(const algo::Dataset& d, const char* engine_label,
                      runtime::CheckpointMode mode, sim::FaultInjector* faults,
                      MakeEngine&& make_engine) {
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = kCheckpointEvery;
  opts.mode = mode;
  auto outcome = runtime::run_with_recovery(std::forward<MakeEngine>(make_engine),
                                            opts, faults);
  Row row;
  row.dataset = d.name;
  row.engine = engine_label;
  row.mode = runtime::checkpoint_mode_name(mode);
  row.rec = outcome.recovery;
  row.total_s = outcome.run.total_time_s() + outcome.recovery.modeled_checkpoint_s +
                outcome.recovery.modeled_recovery_s;
  row.supersteps = outcome.run.supersteps.size();
  return row;
}

Row run_hama(const algo::Dataset& d, const graph::Csr& g, const RunOptions& opts) {
  algo::PageRankBsp prog;
  prog.epsilon = opts.epsilon;
  bsp::Config cfg;
  cfg.topo = sim::Topology{opts.machines, opts.workers / opts.machines};
  cfg.cost = sim::CostModel::hama_java();
  cfg.max_supersteps = kMaxSupersteps;
  cfg.faults = std::make_shared<sim::FaultInjector>(crash_plan());
  const auto part = make_edge_cut(g, opts, opts.workers);
  return run_cell_recovery(
      d, "Hama", runtime::CheckpointMode::kHeavyweight, cfg.faults.get(),
      [&] { return std::make_unique<bsp::Engine<algo::PageRankBsp>>(g, part, prog, cfg); });
}

Row run_cyclops(const algo::Dataset& d, const graph::Csr& g, const RunOptions& opts,
                runtime::CheckpointMode mode) {
  algo::PageRankCyclops prog;
  prog.epsilon = opts.epsilon;
  core::Config cfg = core::Config::cyclops(opts.machines, opts.workers / opts.machines);
  cfg.max_supersteps = kMaxSupersteps;
  cfg.faults = std::make_shared<sim::FaultInjector>(crash_plan());
  const auto part = make_edge_cut(g, opts, cfg.topo.total_workers());
  return run_cell_recovery(d, "Cyclops", mode, cfg.faults.get(), [&] {
    return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, prog, cfg);
  });
}

Row run_powergraph(const algo::Dataset& d, const graph::Csr& g, const RunOptions& opts) {
  algo::PageRankGas prog;
  prog.num_vertices = g.num_vertices();
  prog.epsilon = opts.epsilon;
  gas::Config cfg;
  cfg.topo = sim::Topology{opts.machines, 1};
  cfg.cost = sim::CostModel::boost_cpp();
  cfg.max_iterations = kMaxSupersteps;
  cfg.faults = std::make_shared<sim::FaultInjector>(crash_plan());
  const auto vcut = partition::RandomVertexCut{}.partition(g, opts.machines);
  return run_cell_recovery(
      d, "PowerGraph", runtime::CheckpointMode::kLightweight, cfg.faults.get(), [&] {
        return std::make_unique<gas::Engine<algo::PageRankGas>>(g, vcut, prog, cfg);
      });
}

void emit_json(const std::vector<Row>& rows, bool claim_holds) {
  std::FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_recovery.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"recovery\",\n");
  std::fprintf(f, "  \"checkpoint_every\": %u,\n  \"crash_at\": %u,\n", kCheckpointEvery,
               kCrashAt);
  std::fprintf(f, "  \"cyclops_lightweight_smaller_than_bsp_heavyweight\": %s,\n",
               claim_holds ? "true" : "false");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"engine\": \"%s\", \"mode\": \"%s\", "
                 "\"supersteps\": %zu, \"checkpoints\": %llu, "
                 "\"checkpoint_bytes\": %llu, \"last_checkpoint_bytes\": %llu, "
                 "\"modeled_checkpoint_s\": %.6f, \"lost_supersteps\": %llu, "
                 "\"modeled_recovery_s\": %.6f, \"total_s\": %.6f}%s\n",
                 r.dataset.c_str(), r.engine.c_str(), r.mode.c_str(), r.supersteps,
                 static_cast<unsigned long long>(r.rec.checkpoints_taken),
                 static_cast<unsigned long long>(r.rec.checkpoint_bytes_written),
                 static_cast<unsigned long long>(r.rec.last_checkpoint_bytes),
                 r.rec.modeled_checkpoint_s,
                 static_cast<unsigned long long>(r.rec.lost_supersteps),
                 r.rec.modeled_recovery_s, r.total_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::puts("wrote BENCH_recovery.json");
}

}  // namespace

int main() {
  const auto datasets = {algo::make_gweb(), algo::make_amazon(), algo::make_syn_gl()};
  RunOptions opts;
  opts.machines = 6;
  opts.workers = 48;

  std::vector<Row> rows;
  bool claim_holds = true;
  Table table({"dataset", "engine", "mode", "ckpts", "ckpt bytes", "last ckpt",
               "write(s)", "lost ss", "recover(s)", "total(s)"});
  for (const auto& d : datasets) {
    const graph::Csr g = graph::Csr::build(d.edges);
    const Row hama = run_hama(d, g, opts);
    const Row cy_light = run_cyclops(d, g, opts, runtime::CheckpointMode::kLightweight);
    const Row cy_heavy = run_cyclops(d, g, opts, runtime::CheckpointMode::kHeavyweight);
    const Row pg = run_powergraph(d, g, opts);
    // The §3.6 claim: a lightweight Cyclops checkpoint (masters only, replicas
    // regenerate) is strictly smaller than what BSP must persist (vertex
    // state + every pending in-queue message).
    claim_holds = claim_holds &&
                  cy_light.rec.last_checkpoint_bytes < hama.rec.last_checkpoint_bytes;
    for (const Row& r : {hama, cy_light, cy_heavy, pg}) {
      table.add_row({r.dataset, r.engine, r.mode, Table::fmt_int(r.rec.checkpoints_taken),
                     Table::fmt_int(r.rec.checkpoint_bytes_written),
                     Table::fmt_int(r.rec.last_checkpoint_bytes),
                     Table::fmt(r.rec.modeled_checkpoint_s, 3),
                     Table::fmt_int(r.rec.lost_supersteps),
                     Table::fmt(r.rec.modeled_recovery_s, 3), Table::fmt(r.total_s, 3)});
      rows.push_back(r);
    }
  }
  std::fputs(table
                 .render("Recovery: PageRank with checkpoint-every-5 and a machine "
                         "crash at superstep 12")
                 .c_str(),
             stdout);
  std::printf("Cyclops lightweight checkpoint < BSP heavyweight checkpoint: %s\n",
              claim_holds ? "yes" : "NO (regression!)");
  emit_json(rows, claim_holds);
  return claim_holds ? 0 : 1;
}
