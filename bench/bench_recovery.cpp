// Recovery benchmark — two comparisons in one binary, both PageRank with
// periodic checkpoints and one injected machine crash:
//
//   1. Checkpoint cost (§3.6, FTPregel-style): Cyclops checkpoints are cheap
//      because replicas and in-flight messages regenerate from the immutable
//      view, while Hama/BSP must also persist every pending in-queue
//      message. Claim: cyclops-lightweight last checkpoint < hama-heavyweight.
//
//   2. Recovery mode (log-based localized recovery): on the same Cyclops
//      configuration, rollback vs log vs log-parallel. Rollback re-executes
//      the lost window on every machine; log replays only the failed
//      machine, re-feeding its inbound packages from the message log;
//      log-parallel re-partitions the dead machine's share across the K
//      survivors. Claim: on GWeb, log and log-parallel cut the modeled
//      time-to-recover by >= 5x vs rollback. The recovery-mode cells use an
//      aggressive failure detector (10ms) so the comparison measures replay
//      work, not a detection constant charged equally to every mode.
//
// `--smoke` shrinks the datasets for CI (the 5x claim is checked loosely
// there — detection floors compress the ratio at toy scale); `--gate
// <baseline.json>` compares each recovery-mode row's modeled_recovery_s
// against a recorded baseline and exits nonzero when any row exceeds
// baseline / GATE_SLACK (order-of-magnitude regressions, not host jitter).
// Emits BENCH_recovery.json for tooling.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cyclops/graph/csr.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/runtime/recovery.hpp"
#include "cyclops/sim/fault.hpp"
#include "cyclops/sim/message_log.hpp"
#include "harness.hpp"

namespace {

using namespace cyclops;
using namespace cyclops::bench;

constexpr double kGateSlack = 0.15;  ///< current <= baseline / slack passes

struct Row {
  std::string section;  ///< "checkpoint" (cost comparison) | "recovery" (mode cells)
  std::string dataset;
  std::string engine;
  std::string mode;
  std::string recovery;
  metrics::RecoveryStats rec;
  double total_s = 0;
  std::size_t supersteps = 0;
};

constexpr Superstep kCheckpointEvery = 5;
constexpr Superstep kCrashAt = 12;
constexpr Superstep kMaxSupersteps = 30;
// Recovery-mode cells model the deployment log-based recovery is built for:
// checkpoints are rare (they cost stable-storage writes every interval, so
// operators stretch them), which makes the replay window long — here the
// crash at superstep 24 rolls back to the superstep-0 snapshot, losing 24
// supersteps. Rollback re-executes that window on all six machines;
// log-based modes replay one machine's share of it. The detector is an
// aggressive 1ms lease so the comparison measures replay work, not a
// detection constant charged equally to every mode.
constexpr Superstep kModeCheckpointEvery = 25;
constexpr Superstep kModeCrashAt = 24;
constexpr double kModeDetectionUs = 1000.0;

sim::FaultPlan crash_plan(Superstep crash_at, double detection_us) {
  sim::FaultPlan plan;
  plan.seed = 42;
  plan.crash_at = crash_at;
  plan.crash_machine = 1;
  plan.detection_timeout_us = detection_us;
  return plan;
}

template <typename MakeEngine>
Row run_cell_recovery(const char* section, const algo::Dataset& d,
                      const char* engine_label, const runtime::RecoveryOptions& opts,
                      sim::FaultInjector* faults, MakeEngine&& make_engine) {
  auto outcome = runtime::run_with_recovery(std::forward<MakeEngine>(make_engine),
                                            opts, faults);
  Row row;
  row.section = section;
  row.dataset = d.name;
  row.engine = engine_label;
  row.mode = runtime::checkpoint_mode_name(opts.mode);
  row.recovery = runtime::recovery_mode_name(opts.recovery);
  row.rec = outcome.recovery;
  row.total_s = outcome.run.total_time_s() + outcome.recovery.modeled_checkpoint_s +
                outcome.recovery.modeled_recovery_s;
  row.supersteps = outcome.run.supersteps.size();
  return row;
}

runtime::RecoveryOptions rollback_opts(runtime::CheckpointMode mode) {
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = kCheckpointEvery;
  opts.mode = mode;
  return opts;
}

Row run_hama(const algo::Dataset& d, const graph::Csr& g, const RunOptions& opts) {
  algo::PageRankBsp prog;
  prog.epsilon = opts.epsilon;
  bsp::Config cfg;
  cfg.topo = sim::Topology{opts.machines, opts.workers / opts.machines};
  cfg.cost = sim::CostModel::hama_java();
  cfg.max_supersteps = kMaxSupersteps;
  cfg.faults = std::make_shared<sim::FaultInjector>(
      crash_plan(kCrashAt, sim::FaultPlan{}.detection_timeout_us));
  const auto part = make_edge_cut(g, opts, opts.workers);
  return run_cell_recovery(
      "checkpoint", d, "Hama", rollback_opts(runtime::CheckpointMode::kHeavyweight),
      cfg.faults.get(),
      [&] { return std::make_unique<bsp::Engine<algo::PageRankBsp>>(g, part, prog, cfg); });
}

Row run_cyclops(const algo::Dataset& d, const graph::Csr& g, const RunOptions& opts,
                runtime::CheckpointMode mode) {
  algo::PageRankCyclops prog;
  prog.epsilon = opts.epsilon;
  core::Config cfg = core::Config::cyclops(opts.machines, opts.workers / opts.machines);
  cfg.max_supersteps = kMaxSupersteps;
  cfg.faults = std::make_shared<sim::FaultInjector>(
      crash_plan(kCrashAt, sim::FaultPlan{}.detection_timeout_us));
  const auto part = make_edge_cut(g, opts, cfg.topo.total_workers());
  return run_cell_recovery("checkpoint", d, "Cyclops", rollback_opts(mode),
                           cfg.faults.get(), [&] {
    return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, prog, cfg);
  });
}

Row run_powergraph(const algo::Dataset& d, const graph::Csr& g, const RunOptions& opts) {
  algo::PageRankGas prog;
  prog.num_vertices = g.num_vertices();
  prog.epsilon = opts.epsilon;
  gas::Config cfg;
  cfg.topo = sim::Topology{opts.machines, 1};
  cfg.cost = sim::CostModel::boost_cpp();
  cfg.max_iterations = kMaxSupersteps;
  cfg.faults = std::make_shared<sim::FaultInjector>(
      crash_plan(kCrashAt, sim::FaultPlan{}.detection_timeout_us));
  const auto vcut = partition::RandomVertexCut{}.partition(g, opts.machines);
  return run_cell_recovery(
      "checkpoint", d, "PowerGraph", rollback_opts(runtime::CheckpointMode::kLightweight),
      cfg.faults.get(), [&] {
        return std::make_unique<gas::Engine<algo::PageRankGas>>(g, vcut, prog, cfg);
      });
}

/// One recovery-mode cell: Cyclops, lightweight checkpoints, the aggressive
/// detector, and — for log-based modes — a message log shared between the
/// fabric and the recovery coordinator.
Row run_cyclops_mode(const algo::Dataset& d, const graph::Csr& g, const RunOptions& opts,
                     runtime::RecoveryMode recovery) {
  algo::PageRankCyclops prog;
  prog.epsilon = opts.epsilon;
  core::Config cfg = core::Config::cyclops(opts.machines, opts.workers / opts.machines);
  cfg.max_supersteps = kMaxSupersteps;
  cfg.faults = std::make_shared<sim::FaultInjector>(
      crash_plan(kModeCrashAt, kModeDetectionUs));

  runtime::RecoveryOptions ropts;
  ropts.checkpoint_every = kModeCheckpointEvery;
  ropts.mode = runtime::CheckpointMode::kLightweight;
  ropts.recovery = recovery;
  if (recovery != runtime::RecoveryMode::kRollback) {
    cfg.message_log = std::make_shared<sim::MessageLog>();
    ropts.log = cfg.message_log.get();
  }
  const auto part = make_edge_cut(g, opts, cfg.topo.total_workers());
  return run_cell_recovery("recovery", d, "Cyclops", ropts, cfg.faults.get(), [&] {
    return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, prog, cfg);
  });
}

// ------------------------------------------------------------------- gate

/// Pulls `"modeled_recovery_s": <num>` for a given dataset+recovery row out
/// of the baseline JSON (written by this benchmark, so the shape is known;
/// this is a seek, not a parser). Returns 0 when the row is absent.
double baseline_recovery_s(const std::string& json, const Row& r) {
  const std::string key = "\"section\": \"" + r.section + "\", \"dataset\": \"" +
                          r.dataset + "\", \"engine\": \"" + r.engine +
                          "\", \"mode\": \"" + r.mode + "\", \"recovery\": \"" +
                          r.recovery + "\"";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return 0;
  const std::string field = "\"modeled_recovery_s\": ";
  const std::size_t f = json.find(field, at);
  if (f == std::string::npos) return 0;
  return std::strtod(json.c_str() + f + field.size(), nullptr);
}

int apply_gate(const std::string& baseline_path, const std::vector<Row>& rows) {
  std::ifstream in(baseline_path);
  if (!in.good()) {
    std::fprintf(stderr, "gate: cannot read baseline %s\n", baseline_path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  int failures = 0;
  for (const Row& r : rows) {
    const double base = baseline_recovery_s(json, r);
    if (base <= 0) {
      std::fprintf(stderr, "gate: no baseline row for %s/%s/%s — skipping\n",
                   r.dataset.c_str(), r.engine.c_str(), r.recovery.c_str());
      continue;
    }
    // Lower is better for a recovery time: fail only past baseline / slack.
    const double ceiling = base / kGateSlack;
    const bool ok = r.rec.modeled_recovery_s <= ceiling;
    std::printf("gate: %-8s %-12s  %.4gs vs baseline %.4gs (ceiling %.4gs) %s\n",
                r.dataset.c_str(), r.recovery.c_str(), r.rec.modeled_recovery_s, base,
                ceiling, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

// ------------------------------------------------------------------- output

void emit_json(const std::vector<Row>& rows, bool ckpt_claim, double log_speedup,
               double parallel_speedup, bool speedup_claim) {
  std::FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_recovery.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"recovery\",\n");
  std::fprintf(f, "  \"checkpoint_every\": %u,\n  \"crash_at\": %u,\n", kCheckpointEvery,
               kCrashAt);
  std::fprintf(f,
               "  \"mode_checkpoint_every\": %u,\n  \"mode_crash_at\": %u,\n"
               "  \"mode_detection_us\": %.0f,\n",
               kModeCheckpointEvery, kModeCrashAt, kModeDetectionUs);
  std::fprintf(f, "  \"gate_slack\": %.2f,\n", kGateSlack);
  std::fprintf(f, "  \"cyclops_lightweight_smaller_than_bsp_heavyweight\": %s,\n",
               ckpt_claim ? "true" : "false");
  std::fprintf(f, "  \"gweb_log_recovery_speedup\": %.2f,\n", log_speedup);
  std::fprintf(f, "  \"gweb_log_parallel_recovery_speedup\": %.2f,\n", parallel_speedup);
  std::fprintf(f, "  \"gweb_log_recovery_speedup_at_least_5x\": %s,\n",
               speedup_claim ? "true" : "false");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"dataset\": \"%s\", \"engine\": \"%s\", "
                 "\"mode\": \"%s\", "
                 "\"recovery\": \"%s\", \"supersteps\": %zu, \"checkpoints\": %llu, "
                 "\"checkpoint_bytes\": %llu, \"last_checkpoint_bytes\": %llu, "
                 "\"modeled_checkpoint_s\": %.6f, \"lost_supersteps\": %llu, "
                 "\"modeled_recovery_s\": %.6f, \"replay_window_s\": %.6f, "
                 "\"log_bytes\": %llu, \"log_packages\": %llu, "
                 "\"replay_verified_packages\": %llu, \"replay_log_mismatches\": %llu, "
                 "\"total_s\": %.6f}%s\n",
                 r.section.c_str(), r.dataset.c_str(), r.engine.c_str(), r.mode.c_str(),
                 r.recovery.c_str(), r.supersteps,
                 static_cast<unsigned long long>(r.rec.checkpoints_taken),
                 static_cast<unsigned long long>(r.rec.checkpoint_bytes_written),
                 static_cast<unsigned long long>(r.rec.last_checkpoint_bytes),
                 r.rec.modeled_checkpoint_s,
                 static_cast<unsigned long long>(r.rec.lost_supersteps),
                 r.rec.modeled_recovery_s, r.rec.replay_window_s,
                 static_cast<unsigned long long>(r.rec.log_bytes),
                 static_cast<unsigned long long>(r.rec.log_packages),
                 static_cast<unsigned long long>(r.rec.replay_verified_packages),
                 static_cast<unsigned long long>(r.rec.replay_log_mismatches), r.total_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::puts("wrote BENCH_recovery.json");
}

}  // namespace

int main(int argc, char** argv) {
  args::Parser p(argc, argv);
  const bool smoke = p.flag("--smoke");
  const std::string gate = p.get("--gate", std::string{});
  p.finish();

  const algo::DatasetScale scale{smoke ? 0.25 : 1.0, 2014};
  const auto datasets = {algo::make_gweb(scale), algo::make_amazon(scale),
                         algo::make_syn_gl(scale)};
  RunOptions opts;
  opts.machines = 6;
  opts.workers = 48;

  std::vector<Row> rows;
  bool ckpt_claim = true;
  double log_speedup = 0;
  double parallel_speedup = 0;
  Table ckpt_table({"dataset", "engine", "mode", "ckpts", "ckpt bytes", "last ckpt",
                    "write(s)", "lost ss", "recover(s)", "total(s)"});
  Table mode_table({"dataset", "recovery", "lost ss", "log MB", "verified", "window(s)",
                    "recover(s)", "speedup"});
  for (const auto& d : datasets) {
    const graph::Csr g = graph::Csr::build(d.edges);
    const Row hama = run_hama(d, g, opts);
    const Row cy_light = run_cyclops(d, g, opts, runtime::CheckpointMode::kLightweight);
    const Row cy_heavy = run_cyclops(d, g, opts, runtime::CheckpointMode::kHeavyweight);
    const Row pg = run_powergraph(d, g, opts);
    // The §3.6 claim: a lightweight Cyclops checkpoint (masters only, replicas
    // regenerate) is strictly smaller than what BSP must persist (vertex
    // state + every pending in-queue message).
    ckpt_claim = ckpt_claim &&
                 cy_light.rec.last_checkpoint_bytes < hama.rec.last_checkpoint_bytes;
    for (const Row& r : {hama, cy_light, cy_heavy, pg}) {
      ckpt_table.add_row(
          {r.dataset, r.engine, r.mode, Table::fmt_int(r.rec.checkpoints_taken),
           Table::fmt_int(r.rec.checkpoint_bytes_written),
           Table::fmt_int(r.rec.last_checkpoint_bytes),
           Table::fmt(r.rec.modeled_checkpoint_s, 3),
           Table::fmt_int(r.rec.lost_supersteps),
           Table::fmt(r.rec.modeled_recovery_s, 3), Table::fmt(r.total_s, 3)});
      rows.push_back(r);
    }

    // Recovery-mode comparison: same engine, same checkpoint cadence, same
    // crash — only the recovery strategy differs.
    const Row rb = run_cyclops_mode(d, g, opts, runtime::RecoveryMode::kRollback);
    const Row lg = run_cyclops_mode(d, g, opts, runtime::RecoveryMode::kLog);
    const Row lp = run_cyclops_mode(d, g, opts, runtime::RecoveryMode::kLogParallel);
    for (const Row& r : {rb, lg, lp}) {
      const double speedup = r.rec.modeled_recovery_s > 0
                                 ? rb.rec.modeled_recovery_s / r.rec.modeled_recovery_s
                                 : 0.0;
      mode_table.add_row(
          {r.dataset, r.recovery, Table::fmt_int(r.rec.lost_supersteps),
           Table::fmt(static_cast<double>(r.rec.log_bytes) / (1 << 20), 2),
           Table::fmt_int(r.rec.replay_verified_packages),
           Table::fmt(r.rec.replay_window_s, 3), Table::fmt(r.rec.modeled_recovery_s, 4),
           Table::fmt(speedup, 1)});
      rows.push_back(r);
      if (d.name == "GWeb") {
        if (r.recovery == "log") log_speedup = speedup;
        if (r.recovery == "log-parallel") parallel_speedup = speedup;
      }
    }
  }
  std::fputs(ckpt_table
                 .render("Checkpoint cost: PageRank with checkpoint-every-5 and a "
                         "machine crash at superstep 12")
                 .c_str(),
             stdout);
  std::fputs(mode_table
                 .render("Recovery mode: Cyclops lightweight, rare checkpoints "
                         "(every 25), crash at superstep 24, 1ms detector — "
                         "rollback vs localized log replay")
                 .c_str(),
             stdout);
  std::printf("Cyclops lightweight checkpoint < BSP heavyweight checkpoint: %s\n",
              ckpt_claim ? "yes" : "NO (regression!)");
  // At smoke scale the fixed detection/frame-read floors compress the ratio,
  // so the 5x bar applies only to the full-size run; smoke still requires
  // log-based recovery to beat rollback at all.
  const double bar = smoke ? 1.0 : 5.0;
  const bool speedup_claim = log_speedup >= bar && parallel_speedup >= bar;
  std::printf("GWeb modeled-recovery speedup vs rollback: log %.1fx, log-parallel %.1fx "
              "(bar %.0fx): %s\n",
              log_speedup, parallel_speedup, bar, speedup_claim ? "yes" : "NO (regression!)");
  emit_json(rows, ckpt_claim, log_speedup, parallel_speedup, speedup_claim);

  int rc = (ckpt_claim && speedup_claim) ? 0 : 1;
  if (!gate.empty()) rc |= apply_gate(gate, rows);
  return rc;
}
