#pragma once
// Shared benchmark harness: runs one (dataset, engine, configuration) cell
// and returns the numbers the paper's figures/tables report. Every bench
// binary builds its rows through this file so "execution time", "#messages"
// and "replication factor" mean the same thing everywhere.
//
// Engine time = measured simulated-parallel work + modeled wire/barrier time
// (see DESIGN.md §5). Hama = bsp::Engine with the Java-RPC cost model;
// Cyclops/CyclopsMT = core::Engine; PowerGraph = gas::Engine.

#include <optional>
#include <string>

#include "cyclops/algorithms/als.hpp"
#include "cyclops/common/args.hpp"
#include "cyclops/algorithms/cd.hpp"
#include "cyclops/algorithms/datasets.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/metrics/superstep_stats.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/multilevel.hpp"
#include "cyclops/partition/vertex_cut.hpp"

namespace cyclops::bench {

enum class EngineKind { kHama, kCyclops, kCyclopsMT, kPowerGraph };

inline const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::kHama: return "Hama";
    case EngineKind::kCyclops: return "Cyclops";
    case EngineKind::kCyclopsMT: return "CyclopsMT";
    case EngineKind::kPowerGraph: return "PowerGraph";
  }
  return "?";
}

struct RunOptions {
  MachineId machines = 6;          ///< the paper's cluster size
  WorkerId workers = 48;           ///< total workers (partitions for Hama/Cyclops)
  unsigned mt_receivers = 2;       ///< CyclopsMT receiver threads
  bool multilevel = false;         ///< Metis-like partition instead of hash
  double epsilon = 1e-9;
  Superstep max_supersteps = 30;
  std::uint64_t partition_seed = 42;
  args::StoreArgs store;           ///< graph store backend selection

  [[nodiscard]] graph::StoreOptions store_options() const {
    return graph::make_store_options(store.kind, store.mem_cap_mb, store.spill_dir);
  }
};

/// Shared flag block for bench mains: overrides the harness defaults from the
/// command line. Callers query their own binary-specific flags on `p` before
/// or after, then call p.finish().
inline RunOptions parse_run_options(args::Parser& p, RunOptions o = {}) {
  o.machines = p.get("--machines", o.machines);
  o.workers = p.get("--workers", o.workers);
  o.mt_receivers = p.get("--receivers", o.mt_receivers);
  if (p.flag("--multilevel")) o.multilevel = true;
  o.epsilon = p.get("--epsilon", o.epsilon);
  o.max_supersteps = p.get("--max-supersteps", o.max_supersteps);
  o.partition_seed = p.get("--seed", o.partition_seed);
  o.store = args::store_args(p);
  return o;
}

struct CellResult {
  metrics::RunStats stats;
  std::uint64_t messages = 0;
  std::uint64_t remote_messages = 0;
  double replication_factor = 1.0;
  double total_s = 0;  ///< headline execution time

  [[nodiscard]] double speedup_over(const CellResult& base) const {
    return total_s > 0 ? base.total_s / total_s : 0.0;
  }
};

inline partition::EdgeCutPartition make_edge_cut(const graph::GraphStore& g,
                                                 const RunOptions& opts,
                                                 WorkerId parts) {
  if (opts.multilevel) {
    partition::MultilevelConfig cfg;
    cfg.seed = opts.partition_seed;
    return partition::MultilevelPartitioner{cfg}.partition(g, parts);
  }
  return partition::HashPartitioner{}.partition(g, parts);
}

namespace detail {

template <typename Engine>
CellResult collect(Engine& engine, metrics::RunStats stats, double replication) {
  CellResult r;
  r.stats = std::move(stats);
  const auto net = r.stats.net_totals();
  r.messages = net.total_messages();
  r.remote_messages = net.remote_messages;
  r.replication_factor = replication;
  r.total_s = r.stats.total_time_s();
  (void)engine;
  return r;
}

template <typename Prog>
CellResult run_bsp(const graph::GraphStore& g, const algo::Dataset& d, Prog prog,
                   const RunOptions& opts) {
  (void)d;
  bsp::Config cfg;
  cfg.topo = sim::Topology{opts.machines, opts.workers / opts.machines};
  cfg.cost = sim::CostModel::hama_java();
  cfg.max_supersteps = opts.max_supersteps;
  bsp::Engine<Prog> engine(g, make_edge_cut(g, opts, opts.workers), prog, cfg);
  auto stats = engine.run();
  return collect(engine, std::move(stats), 1.0);
}

template <typename Prog>
CellResult run_cyclops(const graph::GraphStore& g, const algo::Dataset& d, Prog prog,
                       const RunOptions& opts, bool mt) {
  (void)d;
  core::Config cfg;
  if (mt) {
    // One worker per machine, workers/machines simulated compute threads.
    cfg = core::Config::cyclops_mt(opts.machines,
                                   std::max<unsigned>(1, opts.workers / opts.machines),
                                   opts.mt_receivers);
  } else {
    cfg = core::Config::cyclops(opts.machines, opts.workers / opts.machines);
  }
  cfg.max_supersteps = opts.max_supersteps;
  const WorkerId parts = cfg.topo.total_workers();
  core::Engine<Prog> engine(g, make_edge_cut(g, opts, parts), prog, cfg);
  auto stats = engine.run();
  return collect(engine, std::move(stats),
                 engine.layout().replication_factor(g.num_vertices()));
}

}  // namespace detail

/// Runs the dataset's designated workload (Table 1 mapping) on one engine.
/// PowerGraph only supports PageRank here (that is all the paper compares).
inline CellResult run_cell(const algo::Dataset& d, const graph::GraphStore& g, EngineKind kind,
                           const RunOptions& opts) {
  switch (d.workload) {
    case algo::Workload::kPageRank: {
      if (kind == EngineKind::kHama) {
        algo::PageRankBsp prog;
        prog.epsilon = opts.epsilon;
        return detail::run_bsp(g, d, prog, opts);
      }
      if (kind == EngineKind::kPowerGraph) {
        algo::PageRankGas prog;
        prog.num_vertices = g.num_vertices();
        prog.epsilon = opts.epsilon;
        gas::Config cfg;
        // PowerGraph is "essentially multithreaded" (§6.12): one partition
        // per machine, like CyclopsMT — this is what makes the Table 4
        // replication factors comparable.
        cfg.topo = sim::Topology{opts.machines, 1};
        cfg.cost = sim::CostModel::boost_cpp();
        cfg.max_iterations = opts.max_supersteps;
        const WorkerId parts = cfg.topo.total_workers();
        const auto vcut = opts.multilevel
                              ? partition::GreedyVertexCut{opts.partition_seed}.partition(
                                    g, parts)
                              : partition::RandomVertexCut{}.partition(g, parts);
        gas::Engine<algo::PageRankGas> engine(g, vcut, prog, cfg);
        auto stats = engine.run();
        return detail::collect(engine, std::move(stats),
                               engine.layout().replication_factor(g.num_vertices()));
      }
      algo::PageRankCyclops prog;
      prog.epsilon = opts.epsilon;
      return detail::run_cyclops(g, d, prog, opts, kind == EngineKind::kCyclopsMT);
    }
    case algo::Workload::kAls: {
      const unsigned rounds = 10;
      if (kind == EngineKind::kHama) {
        algo::AlsBsp prog;
        prog.num_users = d.num_users;
        prog.rounds = rounds;
        RunOptions o = opts;
        o.max_supersteps = rounds + 2;
        return detail::run_bsp(g, d, prog, o);
      }
      algo::AlsCyclops prog;
      prog.num_users = d.num_users;
      prog.rounds = rounds;
      RunOptions o = opts;
      o.max_supersteps = rounds + 1;
      return detail::run_cyclops(g, d, prog, o, kind == EngineKind::kCyclopsMT);
    }
    case algo::Workload::kCd: {
      if (kind == EngineKind::kHama) {
        algo::CdBsp prog;
        return detail::run_bsp(g, d, prog, opts);
      }
      algo::CdCyclops prog;
      return detail::run_cyclops(g, d, prog, opts, kind == EngineKind::kCyclopsMT);
    }
    case algo::Workload::kSssp: {
      RunOptions o = opts;
      o.max_supersteps = 2000;  // push-mode needs diameter-many supersteps
      if (kind == EngineKind::kHama) {
        algo::SsspBsp prog;
        prog.source = 0;
        return detail::run_bsp(g, d, prog, o);
      }
      algo::SsspCyclops prog;
      prog.source = 0;
      return detail::run_cyclops(g, d, prog, o, kind == EngineKind::kCyclopsMT);
    }
  }
  return {};
}

/// Algorithm label for a dataset, as the paper's figure axes name them.
inline const char* workload_name(algo::Workload w) {
  switch (w) {
    case algo::Workload::kPageRank: return "PageRank";
    case algo::Workload::kAls: return "ALS";
    case algo::Workload::kCd: return "CD";
    case algo::Workload::kSssp: return "SSSP";
  }
  return "?";
}

}  // namespace cyclops::bench
