// Figure 3 — the §2.2 motivation experiment: PageRank on the GWeb stand-in
// under the BSP model. (1) vertices converged per superstep, (2) ratio of
// redundant messages per superstep, (3) final per-vertex error distribution
// (ranked by importance) when the *global* error bound is reached — showing
// that important vertices are still unconverged while converged ones keep
// computing.

#include <cmath>
#include <cstdio>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/metrics/convergence.hpp"
#include "harness.hpp"

int main() {
  using namespace cyclops;
  using namespace cyclops::bench;

  const algo::Dataset gweb = algo::make_gweb();
  const graph::Csr g = graph::Csr::build(gweb.edges);
  std::printf("Dataset: %s\n", gweb.describe().c_str());
  const auto reference = algo::pagerank_reference(g);

  algo::PageRankBsp prog;
  // The paper uses e=1e-10 on graphs whose ranks are ~1e-6; the stand-in has
  // ~40x fewer vertices, so thresholds scale accordingly (see EXPERIMENTS.md).
  prog.epsilon = 1e-8;                 // global average-error stop bound
  prog.redundancy_rel_epsilon = 1e-4;  // information-free re-sends
  bsp::Config cfg;
  cfg.topo = sim::Topology{6, 8};
  cfg.cost = sim::CostModel::hama_java();
  cfg.max_supersteps = 35;  // the figure's horizon
  cfg.track_redundant = true;
  bsp::Engine<algo::PageRankBsp> engine(g, make_edge_cut(g, RunOptions{}, 48), prog, cfg);

  // Per-superstep convergence measured against the reference fixpoint: a
  // vertex "converged at superstep s" when |value - ref| first drops below
  // the local epsilon.
  const double local_eps = 1e-6;  // per-vertex convergence, rank-scale adjusted
  std::vector<Superstep> converged_at(g.num_vertices(), ~Superstep{0});
  engine.set_observer([&](const metrics::SuperstepStats& step,
                          std::span<const double> values) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (converged_at[v] == ~Superstep{0} &&
          std::abs(values[v] - reference[v]) <= local_eps) {
        converged_at[v] = step.superstep;
      }
    }
  });
  const auto stats = engine.run();

  // --- Fig 3(1): vertices newly converged per superstep. ---
  {
    Table t({"superstep", "newly_converged", "cumulative"});
    std::vector<std::uint64_t> per_step(stats.supersteps.size() + 1, 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (converged_at[v] != ~Superstep{0}) ++per_step[converged_at[v]];
    }
    std::uint64_t cumulative = 0;
    for (std::size_t s = 0; s < stats.supersteps.size(); ++s) {
      cumulative += per_step[s];
      t.add_row({Table::fmt_int(static_cast<long long>(s)),
                 Table::fmt_int(static_cast<long long>(per_step[s])),
                 Table::fmt_int(static_cast<long long>(cumulative))});
    }
    std::fputs(t.render("Figure 3(1): vertices converged per superstep "
                        "(paper: ~20% within 2 supersteps, majority by 16)")
                   .c_str(),
               stdout);
  }

  // --- Fig 3(2): redundant message ratio per superstep. ---
  {
    Table t({"superstep", "messages", "redundant", "ratio"});
    for (const auto& s : stats.supersteps) {
      const auto msgs = s.net.total_messages();
      t.add_row({Table::fmt_int(s.superstep),
                 Table::fmt_int(static_cast<long long>(msgs)),
                 Table::fmt_int(static_cast<long long>(s.redundant_messages)),
                 Table::fmt(msgs > 0 ? static_cast<double>(s.redundant_messages) /
                                           static_cast<double>(msgs)
                                     : 0.0,
                            3)});
    }
    std::fputs(t.render("Figure 3(2): redundant-message ratio per superstep "
                        "(paper: >30% after superstep 14)")
                   .c_str(),
               stdout);
  }

  // --- Fig 3(3): final error by rank-importance decile. ---
  {
    const auto ranked =
        metrics::ranked_errors(reference, std::vector<double>(engine.values().begin(),
                                                              engine.values().end()));
    Table t({"importance_decile", "max_error", "mean_error", "unconverged(>eps)"});
    const std::size_t decile = std::max<std::size_t>(1, ranked.size() / 10);
    for (int d = 0; d < 10; ++d) {
      const std::size_t begin = d * decile;
      const std::size_t end = std::min(ranked.size(), begin + decile);
      double max_err = 0, sum = 0;
      std::size_t unconverged = 0;
      for (std::size_t i = begin; i < end; ++i) {
        max_err = std::max(max_err, ranked[i].second);
        sum += ranked[i].second;
        unconverged += ranked[i].second > local_eps;
      }
      t.add_row({Table::fmt_int(d + 1), Table::fmt(max_err, 14),
                 Table::fmt(sum / std::max<std::size_t>(1, end - begin), 14),
                 Table::fmt_int(static_cast<long long>(unconverged))});
    }
    std::fputs(t.render("Figure 3(3): final error by importance decile (paper: "
                        "unconverged vertices concentrate in the top deciles)")
                   .c_str(),
               stdout);
  }
  return 0;
}
