// Table 2 — memory behaviour of Hama/48, Cyclops/48 and CyclopsMT/6x8 for
// PageRank on the Wiki stand-in (hash partition — the paper notes this is
// Cyclops' worst case for replicas). The paper reports JVM heap numbers and
// GC counts from jStat; this repo has no JVM, so the table reports the byte
// footprints that drove them: resident state (heap usage analog), peak with
// in-flight messages (max capacity analog), and transient message churn
// divided by a 64 MB nursery (young-GC-count analog).

#include <cstdio>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/metrics/memory_model.hpp"
#include "cyclops/partition/hash.hpp"
#include "harness.hpp"

int main() {
  using namespace cyclops;
  constexpr std::uint64_t kNursery = 64ull << 20;

  const algo::Dataset wiki = algo::make_wiki();
  const graph::Csr g = graph::Csr::build(wiki.edges);
  std::printf("Dataset: %s\n", wiki.describe().c_str());

  Table t({"configuration", "resident(MB)", "peak(MB)", "replicas(MB)",
           "msg churn(MB)", "youngGC-equiv"});
  auto mb = [](std::uint64_t b) { return Table::fmt(static_cast<double>(b) / (1 << 20), 3); };
  auto add = [&](const char* label, const metrics::MemoryReport& r) {
    t.add_row({label, mb(r.resident_bytes()), mb(r.peak_bytes()), mb(r.replica_bytes),
               mb(r.message_churn_bytes), Table::fmt(r.young_gc_equivalent(kNursery), 2)});
  };

  {
    algo::PageRankBsp prog;
    prog.epsilon = 1e-9;
    bsp::Config cfg;
    cfg.topo = sim::Topology{6, 8};
    cfg.max_supersteps = 30;
    bsp::Engine<algo::PageRankBsp> engine(
        g, partition::HashPartitioner{}.partition(g, 48), prog, cfg);
    (void)engine.run();
    add("Hama/48", engine.memory_report());
  }
  {
    algo::PageRankCyclops prog;
    prog.epsilon = 1e-9;
    core::Config cfg = core::Config::cyclops(6, 8);
    cfg.max_supersteps = 30;
    core::Engine<algo::PageRankCyclops> engine(
        g, partition::HashPartitioner{}.partition(g, 48), prog, cfg);
    (void)engine.run();
    add("Cyclops/48", engine.memory_report());
  }
  {
    algo::PageRankCyclops prog;
    prog.epsilon = 1e-9;
    core::Config cfg = core::Config::cyclops_mt(6, 8, 2);
    cfg.max_supersteps = 30;
    core::Engine<algo::PageRankCyclops> engine(
        g, partition::HashPartitioner{}.partition(g, 6), prog, cfg);
    (void)engine.run();
    add("CyclopsMT/6x8", engine.memory_report());
  }
  std::fputs(t.render("Table 2: memory behaviour, PageRank on Wiki "
                      "(paper: Cyclops allocates more resident space for replicas but "
                      "far less churn -> fewer GCs; CyclopsMT least per worker)")
                 .c_str(),
             stdout);

  // Store-backend split: the same Cyclops/48 run with the graph behind each
  // GraphStore backend. Resident vs. on-disk shows what compression and
  // streaming buy; spill is message buffering charged above the stream
  // store's budget.
  Table st({"store", "graph resident(MB)", "graph on-disk(MB)", "msg spill(MB)",
            "peak(MB)"});
  for (const graph::StoreKind kind :
       {graph::StoreKind::kMemory, graph::StoreKind::kCompact, graph::StoreKind::kStream}) {
    graph::StoreOptions opts;
    opts.kind = kind;
    opts.mem_cap_bytes = 8ull << 20;
    const auto store = graph::make_store(wiki.edges, opts);
    algo::PageRankCyclops prog;
    prog.epsilon = 1e-9;
    core::Config cfg = core::Config::cyclops(6, 8);
    cfg.max_supersteps = 30;
    core::Engine<algo::PageRankCyclops> engine(
        *store, partition::HashPartitioner{}.partition(*store, 48), prog, cfg);
    (void)engine.run();
    const metrics::MemoryReport r = engine.memory_report();
    st.add_row({std::string(graph::store_kind_name(kind)), mb(r.store_resident_bytes),
                mb(r.store_on_disk_bytes), mb(r.message_spill_bytes), mb(r.peak_bytes())});
  }
  std::fputs(st.render("Table 2b: Cyclops/48 graph bytes by store backend "
                       "(stream: O(|V|) index resident, adjacency + message spill "
                       "charged to disk under the 8 MB cap)")
                 .c_str(),
             stdout);
  return 0;
}
