// BENCH_scale — the GraphStore capacity/throughput benchmark. Two questions:
//
//   1. Capacity: at a fixed memory cap, how many edges can each store
//      backend hold resident? The streaming backend keeps only the O(|V|)
//      index in RAM, so it must complete graphs several times past the point
//      where the in-memory CSR no longer fits (the acceptance bar is >= 4x),
//      and this benchmark actually runs PageRank on such a graph to prove
//      "fits" means "computes", not just "constructs".
//
//   2. Throughput: edges scanned per second, per engine x store, for a
//      fixed-superstep PageRank — the price of compression (compact) and of
//      paging (stream) relative to raw in-memory adjacency.
//
// `--smoke` shrinks both sweeps for CI; `--gate <baseline.json>` compares
// per-row edges/sec against a recorded baseline and exits nonzero when any
// row drops below GATE_SLACK x baseline (generous, to absorb host noise —
// this catches order-of-magnitude regressions like accidental O(n) cursor
// re-decodes, not percent-level jitter). Results land in BENCH_scale.json
// in the working directory.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/common/args.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/common/timer.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/vertex_cut.hpp"

namespace {

using namespace cyclops;

constexpr double kGateSlack = 0.15;  ///< current >= slack x baseline passes

struct CapacityRow {
  graph::StoreKind kind;
  unsigned max_scale = 0;       ///< largest rmat scale whose store fits the cap
  std::size_t max_edges = 0;    ///< |E| of that graph
  std::uint64_t resident = 0;   ///< store-resident bytes at max_scale
};

struct ThroughputRow {
  std::string engine;
  graph::StoreKind kind;
  std::size_t edges = 0;
  std::size_t supersteps = 0;
  double elapsed_s = 0;
  [[nodiscard]] double edges_per_sec() const {
    return static_cast<double>(edges) * static_cast<double>(supersteps) /
           (elapsed_s > 0 ? elapsed_s : 1e-9);
  }
  [[nodiscard]] double superstep_ms() const {
    return 1e3 * elapsed_s / static_cast<double>(supersteps > 0 ? supersteps : 1);
  }
};

graph::StoreOptions opts_for(graph::StoreKind kind, std::uint64_t cap_bytes) {
  graph::StoreOptions o;
  o.kind = kind;
  o.mem_cap_bytes = cap_bytes;
  return o;
}

/// Largest rmat graph (scale sweep, 8 edges/vertex) whose store-resident
/// footprint fits under `cap_bytes`.
CapacityRow capacity_sweep(graph::StoreKind kind, std::uint64_t cap_bytes,
                           unsigned max_sweep_scale) {
  CapacityRow row{kind, 0, 0, 0};
  for (unsigned scale = 8; scale <= max_sweep_scale; ++scale) {
    const std::size_t target_edges = std::size_t{8} << scale;
    const graph::EdgeList e = graph::gen::rmat(scale, target_edges, 7);
    const auto store = graph::make_store(e, opts_for(kind, cap_bytes));
    const std::uint64_t resident = store->memory().resident_bytes;
    if (resident > cap_bytes) break;
    row.max_scale = scale;
    row.max_edges = store->num_edges();
    row.resident = resident;
  }
  return row;
}

/// PageRank to a fixed superstep count on a prebuilt store; returns host
/// seconds for the run() call only (graph build and partitioning excluded).
template <typename RunFn>
ThroughputRow time_run(const char* engine, graph::StoreKind kind,
                       const graph::GraphStore& g, std::size_t supersteps, RunFn run) {
  Timer t;
  run();
  return ThroughputRow{engine, kind, g.num_edges(), supersteps, t.elapsed_s()};
}

std::vector<ThroughputRow> throughput_sweep(const graph::EdgeList& e,
                                            std::uint64_t cap_bytes,
                                            std::size_t supersteps) {
  std::vector<ThroughputRow> rows;
  for (const graph::StoreKind kind :
       {graph::StoreKind::kMemory, graph::StoreKind::kCompact, graph::StoreKind::kStream}) {
    const auto store = graph::make_store(e, opts_for(kind, cap_bytes));
    const graph::GraphStore& g = *store;
    {
      algo::PageRankBsp pr;
      pr.epsilon = 0;  // never converges: exactly `supersteps` rounds
      bsp::Config cfg = bsp::Config::workers(4);
      cfg.max_supersteps = static_cast<Superstep>(supersteps);
      rows.push_back(time_run("hama", kind, g, supersteps, [&] {
        bsp::Engine<algo::PageRankBsp> engine(
            g, partition::HashPartitioner{}.partition(g, 4), pr, cfg);
        (void)engine.run();
      }));
    }
    {
      algo::PageRankCyclops pr;
      pr.epsilon = 0;
      core::Config cfg = core::Config::cyclops(2, 2);
      cfg.max_supersteps = static_cast<Superstep>(supersteps);
      cfg.force_all_active = true;
      rows.push_back(time_run("cyclops", kind, g, supersteps, [&] {
        core::Engine<algo::PageRankCyclops> engine(
            g, partition::HashPartitioner{}.partition(g, 4), pr, cfg);
        (void)engine.run();
      }));
    }
    {
      algo::PageRankGas pr;
      pr.num_vertices = g.num_vertices();
      pr.epsilon = 0;
      gas::Config cfg = gas::Config::workers(4);
      cfg.max_iterations = static_cast<Superstep>(supersteps);
      rows.push_back(time_run("gas", kind, g, supersteps, [&] {
        gas::Engine<algo::PageRankGas> engine(
            g, partition::RandomVertexCut{}.partition(g, 4), pr, cfg);
        (void)engine.run();
      }));
    }
  }
  return rows;
}

/// Proof that "fits the cap" means "completes a run": PageRank on a stream
/// store over a graph whose in-memory CSR is far past the cap. Returns the
/// achieved scale factor |E_stream| / |E_memory-max|.
double run_oversized_stream(const CapacityRow& memory_cap, std::uint64_t cap_bytes,
                            unsigned extra_scales, std::size_t supersteps) {
  const unsigned scale = memory_cap.max_scale + extra_scales;
  const std::size_t target_edges = std::size_t{8} << scale;
  const graph::EdgeList e = graph::gen::rmat(scale, target_edges, 7);
  const auto store = graph::make_store(e, opts_for(graph::StoreKind::kStream, cap_bytes));
  if (store->memory().resident_bytes > cap_bytes) {
    std::fprintf(stderr, "stream index itself exceeds the cap at scale %u\n", scale);
    return 0;
  }
  algo::PageRankCyclops pr;
  pr.epsilon = 0;
  core::Config cfg = core::Config::cyclops(2, 2);
  cfg.max_supersteps = static_cast<Superstep>(supersteps);
  core::Engine<algo::PageRankCyclops> engine(
      *store, partition::HashPartitioner{}.partition(*store, 4), pr, cfg);
  (void)engine.run();
  return static_cast<double>(store->num_edges()) /
         static_cast<double>(memory_cap.max_edges > 0 ? memory_cap.max_edges : 1);
}

// ------------------------------------------------------------------- gate

/// Pulls `"edges_per_sec": <num>` for a given engine+store row out of the
/// baseline JSON (written by this benchmark, so the shape is known; this is
/// a seek, not a parser). Returns 0 when the row is absent.
double baseline_edges_per_sec(const std::string& json, const std::string& engine,
                              std::string_view store) {
  const std::string key =
      "\"engine\": \"" + engine + "\", \"store\": \"" + std::string(store) + "\"";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return 0;
  const std::string field = "\"edges_per_sec\": ";
  const std::size_t f = json.find(field, at);
  if (f == std::string::npos) return 0;
  return std::strtod(json.c_str() + f + field.size(), nullptr);
}

int apply_gate(const std::string& baseline_path, const std::vector<ThroughputRow>& rows) {
  std::ifstream in(baseline_path);
  if (!in.good()) {
    std::fprintf(stderr, "gate: cannot read baseline %s\n", baseline_path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  int failures = 0;
  for (const ThroughputRow& r : rows) {
    const double base = baseline_edges_per_sec(json, r.engine, store_kind_name(r.kind));
    if (base <= 0) {
      std::fprintf(stderr, "gate: no baseline row for %s/%s — skipping\n",
                   r.engine.c_str(), std::string(store_kind_name(r.kind)).c_str());
      continue;
    }
    const double floor = kGateSlack * base;
    const bool ok = r.edges_per_sec() >= floor;
    std::printf("gate: %-7s %-7s  %.3g e/s vs baseline %.3g (floor %.3g) %s\n",
                r.engine.c_str(), std::string(store_kind_name(r.kind)).c_str(),
                r.edges_per_sec(), base, floor, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

// ------------------------------------------------------------------- output

void emit_json(std::uint64_t cap_bytes, const std::vector<CapacityRow>& capacity,
               double stream_scale_factor, const std::vector<ThroughputRow>& rows) {
  std::FILE* f = std::fopen("BENCH_scale.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scale.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"scale\",\n");
  std::fprintf(f, "  \"mem_cap_bytes\": %llu,\n",
               static_cast<unsigned long long>(cap_bytes));
  std::fprintf(f, "  \"gate_slack\": %.2f,\n", kGateSlack);
  std::fprintf(f, "  \"capacity\": [\n");
  for (std::size_t i = 0; i < capacity.size(); ++i) {
    const CapacityRow& c = capacity[i];
    std::fprintf(f,
                 "    {\"store\": \"%s\", \"max_scale\": %u, \"max_edges\": %zu, "
                 "\"resident_bytes\": %llu}%s\n",
                 std::string(store_kind_name(c.kind)).c_str(), c.max_scale, c.max_edges,
                 static_cast<unsigned long long>(c.resident),
                 i + 1 < capacity.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"stream_scale_factor\": %.2f,\n", stream_scale_factor);
  std::fprintf(f, "  \"throughput\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"store\": \"%s\", \"edges\": %zu, "
                 "\"supersteps\": %zu, \"elapsed_s\": %.6f, \"edges_per_sec\": %.1f, "
                 "\"superstep_ms\": %.3f}%s\n",
                 r.engine.c_str(), std::string(store_kind_name(r.kind)).c_str(), r.edges,
                 r.supersteps, r.elapsed_s, r.edges_per_sec(), r.superstep_ms(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  args::Parser p(argc, argv);
  const bool smoke = p.flag("--smoke");
  const std::string gate = p.get("--gate", std::string{});
  p.finish();

  // Capacity sweep under a deliberately small cap so the sweep stays cheap;
  // the fits-vs-streams crossover is scale-free.
  const std::uint64_t cap_bytes = smoke ? (1ull << 20) : (8ull << 20);
  const unsigned max_sweep_scale = smoke ? 14 : 18;
  std::vector<CapacityRow> capacity;
  for (const graph::StoreKind kind :
       {graph::StoreKind::kMemory, graph::StoreKind::kCompact, graph::StoreKind::kStream}) {
    capacity.push_back(capacity_sweep(kind, cap_bytes, max_sweep_scale));
  }

  Table cap_table({"store", "max scale", "max |E| under cap", "resident(MB)"});
  for (const CapacityRow& c : capacity) {
    cap_table.add_row({std::string(store_kind_name(c.kind)),
                       Table::fmt_int(static_cast<long long>(c.max_scale)),
                       Table::fmt_int(static_cast<long long>(c.max_edges)),
                       Table::fmt(static_cast<double>(c.resident) / (1 << 20), 3)});
  }
  std::printf("memory cap: %.1f MB\n", static_cast<double>(cap_bytes) / (1 << 20));
  std::fputs(cap_table.render("Capacity: largest rmat graph resident under the cap")
                 .c_str(),
             stdout);

  // Out-of-core proof run: stream a graph `extra_scales` doublings past the
  // in-memory limit (>= 4x edges) end to end.
  const double stream_scale_factor =
      run_oversized_stream(capacity[0], cap_bytes, /*extra_scales=*/2,
                           /*supersteps=*/smoke ? 2 : 3);
  std::printf("stream backend completed %.1fx the in-memory edge limit %s\n",
              stream_scale_factor, stream_scale_factor >= 4.0 ? "(>= 4x: ok)" : "(FAIL)");

  // Throughput sweep.
  const unsigned tp_scale = smoke ? 10 : 12;
  const std::size_t supersteps = smoke ? 5 : 10;
  const graph::EdgeList e =
      graph::gen::rmat(tp_scale, std::size_t{8} << tp_scale, 2014);
  const std::vector<ThroughputRow> rows = throughput_sweep(e, cap_bytes, supersteps);

  Table tp_table({"engine", "store", "|E|", "supersteps", "time(s)", "edges/s",
                  "ms/superstep"});
  for (const ThroughputRow& r : rows) {
    tp_table.add_row({r.engine, std::string(store_kind_name(r.kind)),
                      Table::fmt_int(static_cast<long long>(r.edges)),
                      Table::fmt_int(static_cast<long long>(r.supersteps)),
                      Table::fmt(r.elapsed_s, 3), Table::fmt(r.edges_per_sec(), 0),
                      Table::fmt(r.superstep_ms(), 3)});
  }
  std::fputs(tp_table.render("Throughput: fixed-superstep PageRank, engine x store")
                 .c_str(),
             stdout);

  emit_json(cap_bytes, capacity, stream_scale_factor, rows);

  int rc = stream_scale_factor >= 4.0 ? 0 : 1;
  if (!gate.empty()) rc |= apply_gate(gate, rows);
  return rc;
}
